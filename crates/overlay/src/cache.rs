//! Memoized overlay routing — the message-path hot cache.
//!
//! Every rank update in the networked runtime needs a routing decision:
//! direct transmission resolves the full route to price the lookup (§4.5),
//! indirect transmission resolves one next hop per forwarded package
//! (§4.4). Both are pure functions of `(src, key)` *for a fixed topology*,
//! and the topology changes only at discrete churn events — so between two
//! joins/departs every lookup after the first is a repeat. [`RouteCache`]
//! memoizes them and uses the overlay's [`Overlay::generation`] counter to
//! drop every entry the moment membership changes, which keeps the
//! invariant the rest of the system is built on:
//!
//! > a cached answer is always bit-identical to a freshly computed one.
//!
//! Because of that invariant the cache is invisible to simulation results
//! (same ranks, same §4.5 counters, same `SimStats`); it only removes
//! repeated route walks and their per-hop `Vec` allocations from the hot
//! path. A [`RouteCache::bypassed`] instance keeps the same bookkeeping
//! (every lookup counted as a miss) without storing anything, so benchmarks
//! can report an honest allocations-per-delivery proxy for both modes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{NodeIndex, Overlay};

/// Hit/miss/invalidation counters for a [`RouteCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to walk the overlay (including every lookup of a
    /// bypassed cache).
    pub misses: u64,
    /// Number of times a generation change flushed the cache.
    pub invalidations: u64,
}

impl RouteCacheStats {
    /// Fraction of lookups answered from the cache (0 when no lookups).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Component-wise difference, for measuring a steady-state window:
    /// `later.delta(earlier)` is the traffic between two snapshots.
    #[must_use]
    pub fn delta(&self, earlier: &Self) -> Self {
        Self {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

/// Generation-checked memo of `next_hop` and `route` lookups.
///
/// Keys are `(src, key)` pairs, so one shared cache behaves exactly like a
/// per-source cache. Full routes are stored as `Arc<[NodeIndex]>`: repeated
/// lookups hand out the same allocation instead of rebuilding the hop
/// vector.
#[derive(Debug, Default)]
pub struct RouteCache {
    /// Generation the entries were computed at; entries are flushed when
    /// the overlay reports a different one.
    generation: u64,
    next_hops: HashMap<(NodeIndex, u128), Option<NodeIndex>>,
    routes: HashMap<(NodeIndex, u128), Arc<[NodeIndex]>>,
    replica_sets: HashMap<(u128, usize), Arc<[NodeIndex]>>,
    stats: RouteCacheStats,
    /// When set, nothing is stored and every lookup counts as a miss —
    /// the "cache off" configuration with identical bookkeeping.
    bypass: bool,
}

impl RouteCache {
    /// An empty, active cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that memoizes nothing: every lookup recomputes and counts
    /// as a miss. Lets "cache off" runs share the cache-aware call sites.
    #[must_use]
    pub fn bypassed() -> Self {
        Self { bypass: true, ..Self::default() }
    }

    /// Whether this instance actually stores entries.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.bypass
    }

    /// Drops every entry if the overlay's topology generation moved since
    /// the entries were computed.
    fn sync(&mut self, net: &dyn Overlay) {
        let gen = net.generation();
        if gen != self.generation {
            self.generation = gen;
            if !(self.next_hops.is_empty()
                && self.routes.is_empty()
                && self.replica_sets.is_empty())
            {
                self.next_hops.clear();
                self.routes.clear();
                self.replica_sets.clear();
                self.stats.invalidations += 1;
            }
        }
    }

    /// Memoized [`Overlay::next_hop`]. Identical to the overlay's answer
    /// by construction: entries never survive a generation change.
    pub fn next_hop(&mut self, net: &dyn Overlay, src: NodeIndex, key: u128) -> Option<NodeIndex> {
        if self.bypass {
            self.stats.misses += 1;
            return net.next_hop(src, key);
        }
        self.sync(net);
        if let Some(&hop) = self.next_hops.get(&(src, key)) {
            self.stats.hits += 1;
            return hop;
        }
        self.stats.misses += 1;
        let hop = net.next_hop(src, key);
        self.next_hops.insert((src, key), hop);
        hop
    }

    /// Memoized [`Overlay::route`], shared without copying the hop vector.
    pub fn route(&mut self, net: &dyn Overlay, src: NodeIndex, key: u128) -> Arc<[NodeIndex]> {
        if self.bypass {
            self.stats.misses += 1;
            return net.route(src, key).into();
        }
        self.sync(net);
        if let Some(path) = self.routes.get(&(src, key)) {
            self.stats.hits += 1;
            return Arc::clone(path);
        }
        self.stats.misses += 1;
        let path: Arc<[NodeIndex]> = net.route(src, key).into();
        self.routes.insert((src, key), Arc::clone(&path));
        path
    }

    /// Hop count of the memoized route — the `h` that §4.5 charges per
    /// direct-transmission lookup.
    pub fn route_hops(&mut self, net: &dyn Overlay, src: NodeIndex, key: u128) -> usize {
        self.route(net, src, key).len()
    }

    /// Memoized [`Overlay::replicas`], shared without copying the handle
    /// vector. Replica sets depend only on the key and the membership, so
    /// they ride the same generation-stamped invalidation as routes: a
    /// cached set can never outlive the membership that produced it.
    pub fn replicas(&mut self, net: &dyn Overlay, key: u128, k: usize) -> Arc<[NodeIndex]> {
        if self.bypass {
            self.stats.misses += 1;
            return net.replicas(key, k).into();
        }
        self.sync(net);
        if let Some(set) = self.replica_sets.get(&(key, k)) {
            self.stats.hits += 1;
            return Arc::clone(set);
        }
        self.stats.misses += 1;
        let set: Arc<[NodeIndex]> = net.replicas(key, k).into();
        self.replica_sets.insert((key, k), Arc::clone(&set));
        set
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> RouteCacheStats {
        self.stats
    }

    /// Number of memoized entries (next-hop, full-route and replica-set).
    #[must_use]
    pub fn len(&self) -> usize {
        self.next_hops.len() + self.routes.len() + self.replica_sets.len()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::key_from_u64;
    use crate::{ChordNetwork, PastryNetwork};

    #[test]
    fn repeated_lookups_hit() {
        let net = PastryNetwork::with_nodes(64, 9);
        let mut cache = RouteCache::new();
        let key = key_from_u64(42);
        let first = cache.next_hop(&net, 3, key);
        let second = cache.next_hop(&net, 3, key);
        assert_eq!(first, second);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cached_routes_match_fresh_routes() {
        let net = PastryNetwork::with_nodes(100, 17);
        let mut cache = RouteCache::new();
        for pass in 0..2 {
            for k in 0..50u64 {
                let key = key_from_u64(k);
                for src in [0usize, 13, 99] {
                    let cached = cache.route(&net, src, key);
                    assert_eq!(cached.as_ref(), net.route(src, key).as_slice());
                    assert_eq!(cache.next_hop(&net, src, key), net.next_hop(src, key));
                }
            }
            if pass == 1 {
                assert_eq!(cache.stats().hits, 300, "second pass must hit on every lookup");
            }
        }
    }

    #[test]
    fn depart_invalidates() {
        let mut net = PastryNetwork::with_nodes(32, 5);
        let mut cache = RouteCache::new();
        let key = key_from_u64(7);
        let stale = cache.next_hop(&net, 1, key);
        let _ = stale;
        net.depart(net.responsible(key));
        // Post-churn answers must be recomputed, not replayed.
        assert_eq!(cache.next_hop(&net, 1, key), net.next_hop(1, key));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn chord_departs_bump_generation() {
        let mut net = ChordNetwork::with_nodes(16, 3);
        assert_eq!(net.generation(), 0);
        net.depart(5);
        assert_eq!(net.generation(), 1);
        net.depart(6);
        assert_eq!(net.generation(), 2);
    }

    #[test]
    fn bypassed_cache_stores_nothing_and_counts_misses() {
        let net = ChordNetwork::with_nodes(32, 11);
        let mut cache = RouteCache::bypassed();
        let key = key_from_u64(9);
        for _ in 0..3 {
            assert_eq!(cache.next_hop(&net, 2, key), net.next_hop(2, key));
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn cached_replicas_match_fresh_and_flush_on_churn() {
        let mut net = ChordNetwork::with_nodes(24, 13);
        let mut cache = RouteCache::new();
        let key = key_from_u64(3);
        let first = cache.replicas(&net, key, 2);
        assert_eq!(first.as_ref(), net.replicas(key, 2).as_slice());
        let again = cache.replicas(&net, key, 2);
        assert!(Arc::ptr_eq(&first, &again), "repeat lookups share the allocation");
        assert_eq!(cache.stats().hits, 1);
        // Churn must invalidate: the promoted heir leaves the set.
        net.depart(net.responsible(key));
        let fresh = cache.replicas(&net, key, 2);
        assert_eq!(fresh.as_ref(), net.replicas(key, 2).as_slice());
        assert_eq!(cache.stats().invalidations, 1);
        assert_ne!(first.as_ref(), fresh.as_ref());
    }

    #[test]
    fn bypassed_replicas_store_nothing() {
        let net = PastryNetwork::with_nodes(16, 3);
        let mut cache = RouteCache::bypassed();
        let key = key_from_u64(2);
        for _ in 0..2 {
            assert_eq!(cache.replicas(&net, key, 2).as_ref(), net.replicas(key, 2).as_slice());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_delta_isolates_a_window() {
        let net = PastryNetwork::with_nodes(16, 21);
        let mut cache = RouteCache::new();
        let key = key_from_u64(1);
        cache.next_hop(&net, 0, key); // miss
        let snapshot = cache.stats();
        cache.next_hop(&net, 0, key); // hit
        cache.next_hop(&net, 0, key); // hit
        let window = cache.stats().delta(&snapshot);
        assert_eq!(window, RouteCacheStats { hits: 2, misses: 0, invalidations: 0 });
        assert_eq!(window.hit_rate(), 1.0);
    }
}
