//! Structured P2P overlay networks.
//!
//! The paper runs its page rankers on top of a structured overlay (Pastry
//! \[6\]; Chord/CAN/Tapestry are cited as equivalents). Two things matter to
//! distributed page ranking:
//!
//! 1. **Lookup cost** — finding the node responsible for a key takes an
//!    average of `h` routing hops (`h ≈ 2.5` for Pastry at 1000 nodes, 3.5
//!    at 10 000, 4.0 at 100 000 — the constants §4.5 builds Table 1 from).
//!    Direct transmission pays this `h` for every destination lookup.
//! 2. **Neighbor structure** — each node knows only `g` neighbors (a few
//!    dozen). Indirect transmission (§4.4) sends data *along routing paths*,
//!    so every message travels only between neighbors and per-iteration
//!    message count drops from O(hN²) to O(gN).
//!
//! This crate implements both overlays from scratch over a simulated
//! membership (no sockets — the point is topology, hop counts and neighbor
//! sets, which is all the paper's analysis uses):
//!
//! * [`PastryNetwork`] — 128-bit ids, base-2⁴ digit routing tables, leaf
//!   sets, prefix routing, node join;
//! * [`ChordNetwork`] — 64-bit ring, finger tables, greedy clockwise
//!   routing;
//! * the [`Overlay`] trait — the routing interface consumed by the
//!   transport layer, letting every experiment swap overlays.

//!
//! # Example
//!
//! ```
//! use dpr_overlay::{id::key_from_u64, Overlay, PastryNetwork};
//!
//! let net = PastryNetwork::with_nodes(100, 42);
//! let key = key_from_u64(7);
//! let responsible = net.responsible(key);
//! // Routing from anywhere reaches the responsible node in O(log16 N) hops.
//! let path = net.route(0, key);
//! assert_eq!(path.last().copied().unwrap_or(0), responsible);
//! assert!(path.len() <= 5);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod can;
pub mod chord;
pub mod id;
pub mod metrics;
pub mod pastry;

pub use cache::{RouteCache, RouteCacheStats};
pub use can::CanNetwork;
pub use chord::ChordNetwork;
pub use id::NodeId;
pub use metrics::{avg_route_hops, HopStats};
pub use pastry::PastryNetwork;

/// Dense handle of a node inside an overlay network.
pub type NodeIndex = usize;

/// The routing interface shared by every overlay implementation.
///
/// Keys live in the full `u128` space; implementations using a smaller id
/// space (Chord's `u64`) fold the key down internally.
pub trait Overlay {
    /// Number of live nodes.
    fn n_nodes(&self) -> usize;

    /// The 128-bit key owned by node `idx` (its id, widened if necessary).
    fn node_key(&self, idx: NodeIndex) -> u128;

    /// The node responsible for `key`.
    fn responsible(&self, key: u128) -> NodeIndex;

    /// Routes from `src` toward `key`, returning the path *excluding* `src`
    /// and ending at the responsible node (empty when `src` is itself
    /// responsible). `path.len()` is the hop count of the lookup.
    fn route(&self, src: NodeIndex, key: u128) -> Vec<NodeIndex>;

    /// The next hop from `src` toward `key`, or `None` when `src` is the
    /// responsible node. Indirect transmission uses this to forward packed
    /// score packages one neighbor at a time.
    fn next_hop(&self, src: NodeIndex, key: u128) -> Option<NodeIndex>;

    /// The overlay neighbors of `idx` (leaf set ∪ routing table for Pastry;
    /// successors ∪ fingers for Chord). Every `next_hop` result is a member
    /// of this set.
    fn neighbors(&self, idx: NodeIndex) -> Vec<NodeIndex>;

    /// Whether the handle refers to a live member. Overlays without churn
    /// support return `true` for every handle; Pastry keeps departed
    /// handles stable (for id reuse safety) and reports them dead here.
    fn is_live(&self, _idx: NodeIndex) -> bool {
        true
    }

    /// Monotone topology version, bumped on every mutation that can change
    /// a routing decision (`join`, `depart`, `repair`). [`RouteCache`]
    /// compares it against the generation its entries were computed at, so
    /// a cached route can never outlive the membership that produced it.
    /// Overlays with static membership keep the default constant `0`.
    fn generation(&self) -> u64 {
        0
    }

    /// The `k` nodes that back up the owner of `key`: Pastry's numerically
    /// adjacent leaves, Chord's successor list. The order is the succession
    /// order — `replicas(key, k)[0]` is the node that becomes
    /// [`Overlay::responsible`] for `key` if the current owner departs (the
    /// *heir property* the takeover protocol in `dpr-core::netrun` relies
    /// on), `[1]` the heir after two departures, and so on. The responsible
    /// node itself is never included, and fewer than `k` handles come back
    /// when the live membership is too small. Overlays without a
    /// replica-set notion (CAN: a zone's heir depends on the merge order,
    /// not on a static neighbor list) keep the default empty vector,
    /// meaning replication is unsupported.
    fn replicas(&self, key: u128, k: usize) -> Vec<NodeIndex> {
        let _ = (key, k);
        Vec::new()
    }

    /// Mean neighbor-set size `g` over live nodes (the constant in
    /// `S_it = gN`, Eq 4.3).
    fn mean_neighbors(&self) -> f64 {
        let live: Vec<usize> = (0..self.n_nodes()).filter(|&i| self.is_live(i)).collect();
        if live.is_empty() {
            return 0.0;
        }
        let total: usize = live.iter().map(|&i| self.neighbors(i).len()).sum();
        total as f64 / live.len() as f64
    }
}
