//! Pastry-style prefix-routing overlay (Rowstron & Druschel \[6\]).
//!
//! Node ids are 128-bit numbers read as 32 base-16 digits. Each node keeps:
//!
//! * a **routing table** — row `r` holds, for each digit value `d`, some node
//!   sharing exactly the first `r` digits with this node and having digit
//!   `d` at position `r`;
//! * a **leaf set** — the `L` nodes numerically adjacent to this node.
//!
//! A message for key `k` is forwarded to the routing-table entry matching one
//! more digit of `k`; once `k` falls within the leaf-set span the numerically
//! closest leaf delivers it. Expected hop count is `O(log₁₆ N)` — about 2.5
//! hops at 1000 nodes, 3.5 at 10 000 and 4.0 at 100 000, which are exactly
//! the `h` constants the paper plugs into Table 1.
//!
//! The bulk constructor builds *converged* state from a global membership
//! view (the steady state a long-running Pastry network reaches), while
//! [`PastryNetwork::join`] implements the incremental protocol: the joining
//! node routes a join message to its own id, copies row `i` of its routing
//! table from the `i`-th node on the path, adopts the destination's leaf
//! neighborhood, and announces itself so existing nodes can fill empty
//! slots. Numeric closeness uses plain `|a − b|` on the id space.

use crate::id::{NodeId, N_DIGITS, RADIX};
use crate::{NodeIndex, Overlay};

/// Sentinel for an empty routing-table slot.
const EMPTY: u32 = u32::MAX;

/// Half leaf-set size (`L/2`; Pastry's default configuration keeps 8 leaves
/// on each side, `L = 16`).
const DEFAULT_LEAF_HALF: usize = 8;

/// One node's routing table: `rows[r][d]` is the handle of a node sharing
/// the first `r` digits with the owner and having digit `d` at position `r`
/// (or [`EMPTY`]). Only the rows that can be non-trivial are stored.
#[derive(Debug, Clone)]
struct RoutingTable {
    rows: Vec<[u32; RADIX]>,
}

impl RoutingTable {
    fn empty(n_rows: usize) -> Self {
        Self { rows: vec![[EMPTY; RADIX]; n_rows] }
    }

    fn get(&self, row: usize, digit: usize) -> Option<u32> {
        let v = *self.rows.get(row)?.get(digit)?;
        (v != EMPTY).then_some(v)
    }
}

/// A simulated Pastry network over a fixed (but joinable) membership.
#[derive(Debug, Clone)]
pub struct PastryNetwork {
    /// Append-only node ids; `NodeIndex` = position here (stable across
    /// joins).
    nodes: Vec<NodeId>,
    /// Handles sorted by id.
    order: Vec<u32>,
    /// `rank[h]` = position of handle `h` in `order`.
    rank: Vec<u32>,
    /// Per-node routing tables.
    tables: Vec<RoutingTable>,
    /// Liveness per handle; departed nodes leave stale table entries that
    /// routing skips until [`PastryNetwork::repair`] rebuilds.
    alive: Vec<bool>,
    /// Optional physical coordinates per node (unit square). When present,
    /// table construction is *proximity-aware*: among the candidates for a
    /// routing-table slot, the physically nearest is chosen (Pastry's
    /// "proximity neighbor selection"). Hop counts are unchanged; per-hop
    /// network distance drops.
    locations: Option<Vec<(f64, f64)>>,
    leaf_half: usize,
    /// Topology version for [`crate::RouteCache`] invalidation; bumped by
    /// every `join`/`depart`/`repair`.
    generation: u64,
}

impl PastryNetwork {
    /// Builds a converged network of `n` nodes with ids derived from
    /// `seed` (deterministic).
    #[must_use]
    pub fn with_nodes(n: usize, seed: u64) -> Self {
        let ids = (0..n as u64).map(|i| NodeId::from_seed(seed ^ (i << 1))).collect();
        Self::from_ids(ids)
    }

    /// Like [`Self::with_nodes`] but places every node at a deterministic
    /// point in the unit square and selects routing-table entries by
    /// physical proximity (PNS). Compare [`Self::mean_route_distance`]
    /// against the proximity-oblivious network to see the effect.
    #[must_use]
    pub fn with_nodes_and_proximity(n: usize, seed: u64) -> Self {
        let mut net = Self::with_nodes(n, seed);
        let locations: Vec<(f64, f64)> = (0..n as u64)
            .map(|i| {
                let hx = crate::id::splitmix64(seed ^ i ^ 0x10C0);
                let hy = crate::id::splitmix64(seed ^ i ^ 0x10C1);
                ((hx >> 11) as f64 / (1u64 << 53) as f64, (hy >> 11) as f64 / (1u64 << 53) as f64)
            })
            .collect();
        net.locations = Some(locations);
        // Rebuild tables with proximity-aware slot selection.
        net.repair();
        net
    }

    /// Physical distance between two nodes (0 when no proximity space is
    /// attached).
    #[must_use]
    pub fn distance_between(&self, a: NodeIndex, b: NodeIndex) -> f64 {
        match &self.locations {
            None => 0.0,
            Some(loc) => {
                let (ax, ay) = loc[a];
                let (bx, by) = loc[b];
                ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
            }
        }
    }

    /// Detaches the proximity space (benchmark helper: rebuild tables
    /// obliviously, then [`Self::restore_locations_for_benchmark`]).
    #[doc(hidden)]
    pub fn strip_locations_for_benchmark(&mut self) -> Option<Vec<(f64, f64)>> {
        self.locations.take()
    }

    /// Re-attaches a proximity space detached by
    /// [`Self::strip_locations_for_benchmark`].
    #[doc(hidden)]
    pub fn restore_locations_for_benchmark(&mut self, loc: Option<Vec<(f64, f64)>>) {
        self.locations = loc;
    }

    /// Mean physical route distance over `samples` random lookups — the
    /// latency proxy PNS optimizes. Requires a proximity space.
    #[must_use]
    pub fn mean_route_distance(&self, samples: usize, seed: u64) -> f64 {
        assert!(self.locations.is_some(), "no proximity space attached");
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let live: Vec<usize> = (0..self.nodes.len()).filter(|&i| self.alive[i]).collect();
        let mut total = 0.0;
        for _ in 0..samples {
            let src = live[rng.gen_range(0..live.len())];
            let key = crate::id::key_from_u64(rng.gen());
            let mut cur = src;
            for &hop in &self.route(src, key) {
                total += self.distance_between(cur, hop);
                cur = hop;
            }
        }
        total / samples as f64
    }

    /// Builds a converged network from explicit ids.
    ///
    /// # Panics
    /// If `ids` is empty or contains duplicates.
    #[must_use]
    pub fn from_ids(ids: Vec<NodeId>) -> Self {
        assert!(!ids.is_empty(), "a network needs at least one node");
        let n = ids.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&h| ids[h as usize]);
        assert!(
            order.windows(2).all(|w| ids[w[0] as usize] != ids[w[1] as usize]),
            "duplicate node ids"
        );
        let mut rank = vec![0u32; n];
        for (pos, &h) in order.iter().enumerate() {
            rank[h as usize] = pos as u32;
        }
        let mut net = Self {
            nodes: ids,
            order,
            rank,
            tables: Vec::with_capacity(n),
            alive: vec![true; n],
            locations: None,
            leaf_half: DEFAULT_LEAF_HALF,
            generation: 0,
        };
        for h in 0..n {
            let t = net.build_table_for(Some(h), net.nodes[h]);
            net.tables.push(t);
        }
        net
    }

    /// Number of digits a table needs before prefix ranges collapse to
    /// single nodes: `⌈log₁₆ n⌉ + 2` rows is always enough in practice, but
    /// we simply stop when the range is a singleton.
    fn build_table_for(&self, owner: Option<NodeIndex>, id: NodeId) -> RoutingTable {
        let max_rows = N_DIGITS;
        let mut table = RoutingTable::empty(0);
        for r in 0..max_rows {
            let (lo, hi) = self.prefix_range(id, r);
            if hi - lo <= 1 {
                break; // only this id's own region remains
            }
            let mut row = [EMPTY; RADIX];
            let own_digit = id.digit(r);
            for (d, slot) in row.iter_mut().enumerate() {
                if d == own_digit {
                    continue;
                }
                let pick = match (owner, &self.locations) {
                    // Proximity-aware: nearest candidate in the slot range.
                    (Some(me), Some(_)) => self.nearest_in_prefix_digit(me, id, r, d, lo, hi),
                    _ => self.first_in_prefix_digit(id, r, d, lo, hi),
                };
                if let Some(h) = pick {
                    if self.nodes[h as usize] != id {
                        *slot = h;
                    }
                }
            }
            table.rows.push(row);
        }
        table
    }

    /// Sorted-order sub-range of candidates sharing `r` digits with `id`
    /// and having digit `d` at position `r`.
    fn digit_range(&self, id: NodeId, r: usize, d: usize, lo: usize, hi: usize) -> (usize, usize) {
        let bits = 4 * r as u32;
        let mask: u128 = if bits == 0 { 0 } else { !((1u128 << (128 - bits)) - 1) };
        let shift = 128 - bits - 4;
        let base = (id.0 & mask) | ((d as u128) << shift);
        let start = self.order[lo..hi].partition_point(|&h| self.nodes[h as usize].0 < base) + lo;
        let span = 1u128 << shift;
        let end = match base.checked_add(span) {
            Some(limit) => {
                self.order[lo..hi].partition_point(|&h| self.nodes[h as usize].0 < limit) + lo
            }
            None => hi,
        };
        (start, end)
    }

    /// The physically nearest candidate for slot `(r, d)` — Pastry's
    /// proximity neighbor selection.
    fn nearest_in_prefix_digit(
        &self,
        me: NodeIndex,
        id: NodeId,
        r: usize,
        d: usize,
        lo: usize,
        hi: usize,
    ) -> Option<u32> {
        let (start, end) = self.digit_range(id, r, d, lo, hi);
        self.order[start..end].iter().copied().filter(|&h| self.alive[h as usize]).min_by(
            |&a, &b| {
                self.distance_between(me, a as NodeIndex)
                    .total_cmp(&self.distance_between(me, b as NodeIndex))
            },
        )
    }

    /// Sorted-order range `[lo, hi)` of nodes sharing the first `r` digits
    /// of `id`.
    fn prefix_range(&self, id: NodeId, r: usize) -> (usize, usize) {
        if r == 0 {
            return (0, self.order.len());
        }
        let bits = 4 * r as u32;
        let mask: u128 = if bits >= 128 { u128::MAX } else { !((1u128 << (128 - bits)) - 1) };
        let base = id.0 & mask;
        let lo = self.order.partition_point(|&h| self.nodes[h as usize].0 < base);
        let hi = if bits == 0 {
            self.order.len()
        } else {
            let span = 1u128 << (128 - bits);
            match base.checked_add(span) {
                Some(end) => self.order.partition_point(|&h| self.nodes[h as usize].0 < end),
                None => self.order.len(),
            }
        };
        (lo, hi)
    }

    /// First node (in sorted order) whose id shares `r` digits with `id` and
    /// has digit `d` at position `r`; searched within the prefix range
    /// `[lo, hi)`.
    fn first_in_prefix_digit(
        &self,
        id: NodeId,
        r: usize,
        d: usize,
        lo: usize,
        hi: usize,
    ) -> Option<u32> {
        let bits = 4 * r as u32;
        let mask: u128 = if bits == 0 { 0 } else { !((1u128 << (128 - bits)) - 1) };
        let shift = 128 - bits - 4;
        let base = (id.0 & mask) | ((d as u128) << shift);
        let start = self.order[lo..hi].partition_point(|&h| self.nodes[h as usize].0 < base) + lo;
        if start < hi {
            let h = self.order[start];
            let cand = self.nodes[h as usize];
            if cand.shared_prefix_len(id).min(N_DIGITS) >= r && cand.digit(r) == d {
                return Some(h);
            }
        }
        None
    }

    /// The id of node `h`.
    #[must_use]
    pub fn id_of(&self, h: NodeIndex) -> NodeId {
        self.nodes[h]
    }

    /// Handles of the leaf set of `h` (up to `L/2` on each numeric side,
    /// clamped at the ends of the id space), excluding `h` itself.
    #[must_use]
    pub fn leaf_set(&self, h: NodeIndex) -> Vec<NodeIndex> {
        let r = self.rank[h] as usize;
        self.leaf_positions(h).filter(|&p| p != r).map(|p| self.order[p] as NodeIndex).collect()
    }

    /// Sorted-order positions spanned by `h`'s leaf set, *including* `h`'s
    /// own position. `next_hop` iterates this range directly so the routing
    /// hot path never materializes a leaf-set vector.
    fn leaf_positions(&self, h: NodeIndex) -> std::ops::Range<usize> {
        let r = self.rank[h] as usize;
        let lo = r.saturating_sub(self.leaf_half);
        let hi = (r + self.leaf_half + 1).min(self.order.len());
        lo..hi
    }

    /// Incremental join: derives a fresh id from `seed`, routes a join
    /// message from `bootstrap`, initializes the new node's routing table
    /// from the path, and fills empty slots in existing tables. Returns the
    /// new node's handle.
    ///
    /// # Panics
    /// If the derived id collides with an existing node (astronomically
    /// unlikely; re-seed).
    pub fn join(&mut self, bootstrap: NodeIndex, seed: u64) -> NodeIndex {
        let id = NodeId::from_seed(seed);
        assert!(self.nodes.iter().all(|&n| n != id), "id collision on join; pick another seed");
        // Path the join message takes through the current network.
        let mut path = vec![bootstrap];
        path.extend(self.route(bootstrap, id.0));

        // Insert into membership.
        let h = self.nodes.len();
        self.nodes.push(id);
        self.alive.push(true);
        if let Some(loc) = &mut self.locations {
            let hx = crate::id::splitmix64(seed ^ 0x10C0);
            let hy = crate::id::splitmix64(seed ^ 0x10C1);
            loc.push((
                (hx >> 11) as f64 / (1u64 << 53) as f64,
                (hy >> 11) as f64 / (1u64 << 53) as f64,
            ));
        }
        let pos = self.order.partition_point(|&o| self.nodes[o as usize] < id);
        self.order.insert(pos, h as u32);
        self.rank = vec![0; self.nodes.len()];
        for (p, &o) in self.order.iter().enumerate() {
            self.rank[o as usize] = p as u32;
        }

        // Build the new node's table: row i seeded from the i-th path node's
        // row i (their first i digits match ours well enough in converged
        // networks); then patch with exact candidates where available.
        let mut table = RoutingTable::empty(0);
        for r in 0..N_DIGITS {
            let (lo, hi) = self.prefix_range(id, r);
            if hi - lo <= 1 {
                break;
            }
            let mut row = [EMPTY; RADIX];
            if let Some(&donor) = path.get(r) {
                if let Some(donor_row) = self.tables[donor].rows.get(r) {
                    row = *donor_row;
                }
            }
            // Patch: remove entries whose prefix no longer matches ours and
            // fill gaps from the global view (converged-state correction).
            let own_digit = id.digit(r);
            for (d, slot) in row.iter_mut().enumerate() {
                if d == own_digit {
                    *slot = EMPTY;
                    continue;
                }
                let valid = slot
                    .checked_sub(0)
                    .filter(|&s| s != EMPTY)
                    .map(|s| {
                        let cand = self.nodes[s as usize];
                        cand.shared_prefix_len(id) >= r && cand.digit(r) == d
                    })
                    .unwrap_or(false);
                if !valid {
                    *slot = EMPTY;
                    if let Some(c) = self.first_in_prefix_digit(id, r, d, lo, hi) {
                        *slot = c;
                    }
                }
            }
            table.rows.push(row);
        }
        self.tables.push(table);

        // Announce: existing nodes adopt the newcomer into empty slots.
        for other in 0..h {
            let oid = self.nodes[other];
            let r = oid.shared_prefix_len(id);
            if r >= N_DIGITS {
                continue;
            }
            let d = id.digit(r);
            while self.tables[other].rows.len() <= r {
                let rows = self.tables[other].rows.len();
                let _ = rows;
                self.tables[other].rows.push([EMPTY; RADIX]);
            }
            if self.tables[other].rows[r][d] == EMPTY {
                self.tables[other].rows[r][d] = h as u32;
            }
        }
        self.generation += 1;
        h
    }
}

impl PastryNetwork {
    /// Whether node `h` is still a member.
    #[must_use]
    pub fn is_alive(&self, h: NodeIndex) -> bool {
        self.alive[h]
    }

    /// Number of live nodes (the [`Overlay`] trait's `n_nodes` counts
    /// handles, including departed ones, because handles must stay stable).
    #[must_use]
    pub fn n_alive(&self) -> usize {
        self.order.len()
    }

    /// Node departure (crash or voluntary leave). The node disappears from
    /// the sorted membership immediately — leaf sets, which are derived
    /// from the sorted order, self-repair — while other nodes' routing
    /// tables keep a stale entry that routing skips until [`Self::repair`].
    /// This mirrors real Pastry: leaf-set repair is eager, routing-table
    /// repair is lazy.
    ///
    /// # Panics
    /// If `h` already departed or is the last live node.
    pub fn depart(&mut self, h: NodeIndex) {
        assert!(self.alive[h], "node {h} already departed");
        assert!(self.order.len() > 1, "cannot remove the last node");
        self.alive[h] = false;
        let pos = self.rank[h] as usize;
        self.order.remove(pos);
        for (p, &o) in self.order.iter().enumerate() {
            self.rank[o as usize] = p as u32;
        }
        self.generation += 1;
    }

    /// Rebuilds every live node's routing table from the current
    /// membership (the eventual outcome of Pastry's background table
    /// maintenance after churn).
    pub fn repair(&mut self) {
        for h in 0..self.nodes.len() {
            if self.alive[h] {
                self.tables[h] = self.build_table_for(Some(h), self.nodes[h]);
            }
        }
        self.generation += 1;
    }
}

impl Overlay for PastryNetwork {
    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn node_key(&self, idx: NodeIndex) -> u128 {
        self.nodes[idx].0
    }

    fn responsible(&self, key: u128) -> NodeIndex {
        // Numerically closest id; tie broken toward the smaller id.
        let pos = self.order.partition_point(|&h| self.nodes[h as usize].0 < key);
        let mut best: Option<(u128, NodeIndex)> = None;
        for p in [pos.wrapping_sub(1), pos] {
            if p < self.order.len() {
                let h = self.order[p] as NodeIndex;
                let d = self.nodes[h].distance(NodeId(key));
                if best.is_none_or(|(bd, bh)| {
                    d < bd || (d == bd && self.nodes[h].0 < self.nodes[bh].0)
                }) {
                    best = Some((d, h));
                }
            }
        }
        best.expect("non-empty network").1
    }

    fn route(&self, src: NodeIndex, key: u128) -> Vec<NodeIndex> {
        let mut path = Vec::new();
        let mut cur = src;
        while let Some(nh) = self.next_hop(cur, key) {
            debug_assert!(
                self.nodes[nh].distance(NodeId(key)) < self.nodes[cur].distance(NodeId(key)),
                "routing must strictly approach the key"
            );
            path.push(nh);
            cur = nh;
        }
        path
    }

    fn next_hop(&self, src: NodeIndex, key: u128) -> Option<NodeIndex> {
        assert!(self.alive[src], "routing from departed node {src}");
        let target = NodeId(key);
        let resp = self.responsible(key);
        if resp == src {
            return None;
        }
        let my = self.nodes[src];
        let my_dist = my.distance(target);

        // (1) Leaf-set delivery: if the responsible node is within our leaf
        //     span, hop straight to the numerically closest leaf. Leaf-set
        //     membership is a rank-range check on the sorted order, so no
        //     vector is allocated per hop.
        let leaf_range = self.leaf_positions(src);
        if leaf_range.contains(&(self.rank[resp] as usize)) {
            return Some(resp);
        }

        // (2) Prefix routing: match one more digit (skipping entries that
        //     point at departed nodes — lazy table repair).
        let l = my.shared_prefix_len(target);
        if let Some(t) = self.tables[src].get(l, target.digit(l)) {
            let t = t as NodeIndex;
            if self.alive[t] && self.nodes[t].distance(target) < my_dist {
                return Some(t);
            }
        }

        // (3) Rare case: any known node with an equal-or-longer shared
        //     prefix that is strictly closer; the closest leaf always
        //     qualifies as a last resort (it moves us along the sorted
        //     order toward the key).
        let mut best: Option<(u128, NodeIndex)> = None;
        let mut consider = |h: NodeIndex| {
            // Lazy repair: skip stale entries naming departed nodes.
            if !self.alive[h] {
                return;
            }
            let cand = self.nodes[h];
            let d = cand.distance(target);
            if d < my_dist
                && cand.shared_prefix_len(target) >= l
                && best.is_none_or(|(bd, _)| d < bd)
            {
                best = Some((d, h));
            }
        };
        for p in leaf_range.clone() {
            let h = self.order[p] as NodeIndex;
            if h != src {
                consider(h);
            }
        }
        for row in &self.tables[src].rows {
            for &e in row.iter() {
                if e != EMPTY {
                    consider(e as NodeIndex);
                }
            }
        }
        if best.is_none() {
            // Fall back to pure leaf-walking (strictly decreasing distance,
            // no prefix requirement) — guarantees termination.
            for p in leaf_range {
                let h = self.order[p] as NodeIndex;
                if h == src {
                    continue;
                }
                let d = self.nodes[h].distance(target);
                if d < my_dist && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, h));
                }
            }
        }
        best.map(|(_, h)| h)
    }

    fn is_live(&self, idx: NodeIndex) -> bool {
        self.alive[idx]
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn replicas(&self, key: u128, k: usize) -> Vec<NodeIndex> {
        if k == 0 || self.order.len() <= 1 {
            return Vec::new();
        }
        // The k+1 numerically closest live nodes all sit within k+1 sorted
        // positions of the key's insertion point, so a clamped window is
        // enough — same non-wrapping shape as the leaf ranges.
        let target = NodeId(key);
        let pos = self.order.partition_point(|&h| self.nodes[h as usize].0 < key);
        let lo = pos.saturating_sub(k + 1);
        let hi = (pos + k + 1).min(self.order.len());
        let mut cand: Vec<NodeIndex> = self.order[lo..hi].iter().map(|&h| h as NodeIndex).collect();
        // (distance, id) is exactly `responsible`'s ordering, so cand[0] is
        // the current owner and cand[1..] the succession order.
        cand.sort_by_key(|&h| (self.nodes[h].distance(target), self.nodes[h].0));
        debug_assert_eq!(cand[0], self.responsible(key));
        cand.into_iter().skip(1).take(k).collect()
    }

    fn neighbors(&self, idx: NodeIndex) -> Vec<NodeIndex> {
        let mut out = self.leaf_set(idx);
        for row in &self.tables[idx].rows {
            for &e in row.iter() {
                if e != EMPTY && self.alive[e as usize] {
                    out.push(e as NodeIndex);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&h| h != idx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::key_from_u64;

    #[test]
    fn single_node_network() {
        let net = PastryNetwork::with_nodes(1, 7);
        assert_eq!(net.n_nodes(), 1);
        assert_eq!(net.responsible(key_from_u64(5)), 0);
        assert!(net.route(0, key_from_u64(5)).is_empty());
        assert!(net.neighbors(0).is_empty());
    }

    #[test]
    fn responsible_is_numerically_closest() {
        let net = PastryNetwork::with_nodes(64, 3);
        for k in 0..200u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let best = (0..net.n_nodes())
                .min_by_key(|&h| (net.id_of(h).distance(NodeId(key)), net.id_of(h).0))
                .unwrap();
            assert_eq!(resp, best);
        }
    }

    #[test]
    fn routing_always_delivers() {
        let net = PastryNetwork::with_nodes(200, 11);
        for k in 0..300u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            for src in [0usize, 57, 199] {
                let path = net.route(src, key);
                let last = path.last().copied().unwrap_or(src);
                assert_eq!(last, resp, "key {k} from {src}");
                assert!(path.len() <= net.n_nodes(), "path too long");
            }
        }
    }

    #[test]
    fn routes_are_logarithmically_short() {
        let net = PastryNetwork::with_nodes(1000, 5);
        let mut total = 0usize;
        let samples = 500;
        for k in 0..samples as u64 {
            let key = key_from_u64(k ^ 0xABCD);
            total += net.route((k as usize * 37) % 1000, key).len();
        }
        let avg = total as f64 / samples as f64;
        // log16(1000) ≈ 2.49; the paper quotes ~2.5 hops at 1000 nodes.
        assert!((1.5..=3.5).contains(&avg), "avg hops {avg} out of Pastry's expected band");
    }

    #[test]
    fn neighbors_contain_all_next_hops() {
        let net = PastryNetwork::with_nodes(150, 23);
        for src in 0..20 {
            let nbrs = net.neighbors(src);
            for k in 0..50u64 {
                if let Some(nh) = net.next_hop(src, key_from_u64(k)) {
                    assert!(nbrs.contains(&nh), "next hop {nh} not a neighbor of {src}");
                }
            }
        }
    }

    #[test]
    fn neighbor_counts_are_dozens_not_hundreds() {
        // §4.4: "one node commonly has roughly some dozens of neighbors".
        let net = PastryNetwork::with_nodes(1000, 9);
        let g = net.mean_neighbors();
        assert!((10.0..=80.0).contains(&g), "mean neighbors {g}");
    }

    #[test]
    fn join_inserts_routable_node() {
        let mut net = PastryNetwork::with_nodes(100, 31);
        let newcomer = net.join(0, 0xBEEF);
        assert_eq!(net.n_nodes(), 101);
        // The newcomer's own id must now route to the newcomer from
        // anywhere.
        let key = net.id_of(newcomer).0;
        for src in [0usize, 50, 99] {
            let path = net.route(src, key);
            assert_eq!(path.last().copied().unwrap_or(src), newcomer);
        }
        // And the newcomer can reach everyone else.
        for k in 0..50u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let path = net.route(newcomer, key);
            assert_eq!(path.last().copied().unwrap_or(newcomer), resp);
        }
    }

    #[test]
    fn repeated_joins_keep_network_consistent() {
        let mut net = PastryNetwork::with_nodes(50, 77);
        for j in 0..25u64 {
            net.join((j as usize) % net.n_nodes(), 0x1000 + j);
        }
        assert_eq!(net.n_nodes(), 75);
        for k in 0..100u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let path = net.route((k as usize) % 75, key);
            assert_eq!(path.last().copied().unwrap_or((k as usize) % 75), resp);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node ids")]
    fn duplicate_ids_rejected() {
        let _ = PastryNetwork::from_ids(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn routing_survives_departures_without_repair() {
        let mut net = PastryNetwork::with_nodes(200, 41);
        // 20% of nodes crash; leaf sets self-repair, routing tables go
        // stale but routing must still deliver (lazily skipping the dead).
        for h in (0..200).step_by(5) {
            net.depart(h);
        }
        assert_eq!(net.n_alive(), 160);
        for k in 0..200u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            assert!(net.is_alive(resp), "responsible node is dead");
            for src in [1usize, 51, 199] {
                assert!(net.is_alive(src));
                let path = net.route(src, key);
                assert_eq!(path.last().copied().unwrap_or(src), resp, "key {k} from {src}");
                assert!(path.iter().all(|&h| net.is_alive(h)), "routed through a dead node");
            }
        }
    }

    #[test]
    fn repair_restores_route_quality() {
        let mut net = PastryNetwork::with_nodes(500, 43);
        for h in (0..500).step_by(3) {
            net.depart(h);
        }
        let degraded = crate::metrics::avg_route_hops(&net, 500, 1).mean;
        net.repair();
        let repaired = crate::metrics::avg_route_hops(&net, 500, 1).mean;
        assert!(
            repaired <= degraded + 1e-9,
            "repair should not worsen routes: {repaired} vs {degraded}"
        );
        // Still correct after repair.
        for k in 0..100u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let path = net.route(1, key);
            assert_eq!(path.last().copied().unwrap_or(1), resp);
        }
    }

    #[test]
    fn departure_moves_responsibility_to_a_neighbor() {
        let mut net = PastryNetwork::with_nodes(50, 47);
        let key = key_from_u64(9);
        let old = net.responsible(key);
        net.depart(old);
        let new = net.responsible(key);
        assert_ne!(new, old);
        assert!(net.is_alive(new));
    }

    #[test]
    fn join_after_departures_works() {
        let mut net = PastryNetwork::with_nodes(60, 53);
        net.depart(10);
        net.depart(20);
        let newcomer = net.join(0, 0xFACE);
        let key = net.id_of(newcomer).0;
        let path = net.route(1, key);
        assert_eq!(path.last().copied().unwrap_or(1), newcomer);
    }

    #[test]
    #[should_panic(expected = "already departed")]
    fn double_departure_panics() {
        let mut net = PastryNetwork::with_nodes(10, 3);
        net.depart(4);
        net.depart(4);
    }

    #[test]
    fn proximity_tables_route_correctly() {
        let net = PastryNetwork::with_nodes_and_proximity(300, 61);
        for k in 0..200u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let path = net.route(5, key);
            assert_eq!(path.last().copied().unwrap_or(5), resp);
        }
    }

    #[test]
    fn proximity_selection_reduces_route_distance() {
        // Same ids, same lookups; PNS tables should cut the mean physical
        // distance per route without inflating hop counts.
        let n = 1_000;
        let seed = 77;
        let plain = {
            let mut net = PastryNetwork::with_nodes_and_proximity(n, seed);
            // Strip proximity from table *construction* but keep the
            // coordinate space for measurement: rebuild tables with the
            // oblivious picker by clearing locations, repairing, then
            // re-attaching.
            let loc = net.locations.take();
            net.repair();
            net.locations = loc;
            net
        };
        let pns = PastryNetwork::with_nodes_and_proximity(n, seed);
        let d_plain = plain.mean_route_distance(800, 3);
        let d_pns = pns.mean_route_distance(800, 3);
        assert!(d_pns < d_plain * 0.95, "PNS should shorten routes: {d_pns} vs {d_plain}");
        let h_plain = crate::metrics::avg_route_hops(&plain, 800, 3).mean;
        let h_pns = crate::metrics::avg_route_hops(&pns, 800, 3).mean;
        assert!((h_pns - h_plain).abs() < 0.5, "hops changed too much: {h_pns} vs {h_plain}");
    }

    #[test]
    fn distance_is_zero_without_a_proximity_space() {
        let net = PastryNetwork::with_nodes(10, 5);
        assert_eq!(net.distance_between(0, 1), 0.0);
    }

    #[test]
    fn replicas_are_the_closest_nodes_after_the_owner() {
        let net = PastryNetwork::with_nodes(64, 3);
        for k in 0..100u64 {
            let key = key_from_u64(k);
            let resp = net.responsible(key);
            let reps = net.replicas(key, 3);
            assert_eq!(reps.len(), 3);
            assert!(!reps.contains(&resp), "owner must not replicate to itself");
            // Brute-force ground truth: all nodes by (distance, id).
            let mut all: Vec<usize> = (0..net.n_nodes()).collect();
            all.sort_by_key(|&h| (net.id_of(h).distance(NodeId(key)), net.id_of(h).0));
            assert_eq!(all[0], resp);
            assert_eq!(&all[1..4], reps.as_slice(), "key {k}");
        }
    }

    #[test]
    fn replica_succession_matches_departures() {
        // The heir property: departing the owner promotes replicas[0],
        // departing the heir too promotes replicas[1].
        let mut net = PastryNetwork::with_nodes(50, 19);
        let key = key_from_u64(13);
        let reps = net.replicas(key, 2);
        net.depart(net.responsible(key));
        assert_eq!(net.responsible(key), reps[0]);
        net.depart(net.responsible(key));
        assert_eq!(net.responsible(key), reps[1]);
    }

    #[test]
    fn replicas_clamp_to_membership() {
        let net = PastryNetwork::with_nodes(3, 7);
        let key = key_from_u64(1);
        let reps = net.replicas(key, 10);
        assert_eq!(reps.len(), 2, "only the two non-owners exist");
        assert!(net.replicas(key, 0).is_empty());
        let single = PastryNetwork::with_nodes(1, 7);
        assert!(single.replicas(key, 3).is_empty());
    }
}
