//! CAN — Content-Addressable Network (Ratnasamy et al. \[13\]), the third
//! structured overlay the paper cites as a possible substrate.
//!
//! The key space is a `d`-dimensional unit torus. Every node owns a
//! rectangular *zone*; a key hashes to a point and belongs to the zone
//! containing it. Nodes keep only their zone-adjacent neighbors, and
//! routing walks greedily through neighbors toward the key's point. With
//! `n` nodes the expected path length is `Θ(d·n^(1/d))` — polynomial, not
//! logarithmic, which is exactly why the paper's Table 1 uses Pastry's
//! hop counts instead. Having CAN implemented lets the transmission
//! experiments quantify that difference on the same traffic.
//!
//! Construction follows the CAN join protocol: each joining node picks a
//! random point, the zone containing it is split in half (along the
//! dimensions in round-robin order, as in the paper), and the joiner takes
//! the half containing its point.

use crate::id::splitmix64;
use crate::{NodeIndex, Overlay};

/// Maximum supported dimensionality (CAN's sweet spot is small `d`).
pub const MAX_DIMS: usize = 4;

/// A half-open axis-aligned box `[lo, hi)` in the unit torus.
#[derive(Debug, Clone, PartialEq)]
struct Zone {
    lo: [f64; MAX_DIMS],
    hi: [f64; MAX_DIMS],
    /// Which dimension the next split of this zone uses (round-robin).
    next_split: usize,
}

impl Zone {
    fn contains(&self, p: &[f64; MAX_DIMS], d: usize) -> bool {
        (0..d).all(|i| self.lo[i] <= p[i] && p[i] < self.hi[i])
    }

    /// Splits in half along `self.next_split`; returns the new (upper)
    /// half and mutates `self` into the lower half.
    fn split(&mut self) -> Zone {
        let dim = self.next_split;
        let mid = (self.lo[dim] + self.hi[dim]) / 2.0;
        let mut upper = self.clone();
        upper.lo[dim] = mid;
        self.hi[dim] = mid;
        self.next_split = (dim + 1) % MAX_DIMS;
        upper.next_split = self.next_split;
        upper
    }
}

/// A simulated CAN over a fixed membership.
#[derive(Debug, Clone)]
pub struct CanNetwork {
    d: usize,
    zones: Vec<Zone>,
    /// Cached zone adjacency (torus-aware).
    neighbors: Vec<Vec<u32>>,
}

impl CanNetwork {
    /// Builds a `d`-dimensional CAN of `n` nodes by running the join
    /// protocol with deterministic random points.
    ///
    /// # Panics
    /// If `n == 0` or `d ∉ 1..=MAX_DIMS`.
    #[must_use]
    pub fn with_nodes(n: usize, d: usize, seed: u64) -> Self {
        assert!(n >= 1, "a CAN needs at least one node");
        assert!((1..=MAX_DIMS).contains(&d), "d must be in 1..={MAX_DIMS}");
        let mut zones = vec![Zone {
            lo: [0.0; MAX_DIMS],
            hi: {
                // Unused dimensions are collapsed to the full [0,1) slab so
                // `contains` stays simple.
                let mut hi = [1.0; MAX_DIMS];
                hi[..d].fill(1.0);
                hi
            },
            next_split: 0,
        }];
        for j in 1..n {
            let p = point_from_u64(splitmix64(seed ^ (j as u64).wrapping_mul(0xABCD_1234)), d);
            let owner = zones.iter().position(|z| z.contains(&p, d)).expect("zones tile the torus");
            // Keep splitting within the first d dims only.
            while zones[owner].next_split >= d {
                zones[owner].next_split = (zones[owner].next_split + 1) % MAX_DIMS;
            }
            let mut upper = zones[owner].split();
            while upper.next_split >= d {
                upper.next_split = (upper.next_split + 1) % MAX_DIMS;
            }
            // The joiner takes the half containing its point.
            if upper.contains(&p, d) {
                zones.push(upper);
            } else {
                let lower = std::mem::replace(&mut zones[owner], upper);
                zones.push(lower);
            }
        }
        let neighbors = Self::compute_neighbors(&zones, d);
        Self { d, zones, neighbors }
    }

    /// The dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.d
    }

    fn compute_neighbors(zones: &[Zone], d: usize) -> Vec<Vec<u32>> {
        let n = zones.len();
        let mut out = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                if Self::adjacent(&zones[a], &zones[b], d) {
                    out[a].push(b as u32);
                    out[b].push(a as u32);
                }
            }
        }
        out
    }

    /// Torus adjacency: abutting in exactly one dimension and overlapping
    /// (with positive measure) in all others.
    fn adjacent(a: &Zone, b: &Zone, d: usize) -> bool {
        let mut abut_dims = 0;
        for i in 0..d {
            let abuts = a.hi[i] == b.lo[i]
                || b.hi[i] == a.lo[i]
                || (a.hi[i] == 1.0 && b.lo[i] == 0.0)
                || (b.hi[i] == 1.0 && a.lo[i] == 0.0);
            let overlaps = a.lo[i] < b.hi[i] && b.lo[i] < a.hi[i];
            if overlaps {
                continue;
            }
            if abuts {
                abut_dims += 1;
                if abut_dims > 1 {
                    return false;
                }
                continue;
            }
            return false;
        }
        abut_dims == 1
    }

    /// Torus distance between two scalars in [0,1).
    fn torus_dist_1d(a: f64, b: f64) -> f64 {
        let d = (a - b).abs();
        d.min(1.0 - d)
    }

    /// Torus distance from a point to a zone (0 inside).
    fn dist_point_zone(&self, p: &[f64; MAX_DIMS], z: &Zone) -> f64 {
        let mut acc = 0.0;
        for (i, &pi) in p.iter().enumerate().take(self.d) {
            if z.lo[i] <= pi && pi < z.hi[i] {
                continue;
            }
            // Distance to the nearer face, on the torus. hi is exclusive;
            // measure to a point just inside.
            let dl = Self::torus_dist_1d(pi, z.lo[i]);
            let dh = Self::torus_dist_1d(pi, z.hi[i]);
            acc += dl.min(dh).powi(2);
        }
        acc.sqrt()
    }
}

/// Maps a 64-bit hash to a point in the unit torus, `d` coordinates of
/// ~16 bits each.
fn point_from_u64(h: u64, d: usize) -> [f64; MAX_DIMS] {
    let mut p = [0.0; MAX_DIMS];
    let mut x = h;
    for slot in p.iter_mut().take(d) {
        x = splitmix64(x);
        *slot = (x >> 11) as f64 / (1u64 << 53) as f64;
    }
    p
}

impl Overlay for CanNetwork {
    fn n_nodes(&self) -> usize {
        self.zones.len()
    }

    fn node_key(&self, idx: NodeIndex) -> u128 {
        // Synthesize a key whose point is the zone center.
        let z = &self.zones[idx];
        let mut bits: u128 = 0;
        for i in 0..self.d {
            let c = (z.lo[i] + z.hi[i]) / 2.0;
            bits = (bits << 16) | ((c * 65536.0) as u128 & 0xFFFF);
        }
        bits
    }

    fn responsible(&self, key: u128) -> NodeIndex {
        let p = point_from_u64(key as u64 ^ (key >> 64) as u64, self.d);
        self.zones.iter().position(|z| z.contains(&p, self.d)).expect("zones tile the torus")
    }

    fn route(&self, src: NodeIndex, key: u128) -> Vec<NodeIndex> {
        let mut path = Vec::new();
        let mut cur = src;
        while let Some(next) = self.next_hop(cur, key) {
            path.push(next);
            cur = next;
            assert!(path.len() <= self.n_nodes(), "CAN routing loop");
        }
        path
    }

    fn next_hop(&self, src: NodeIndex, key: u128) -> Option<NodeIndex> {
        let p = point_from_u64(key as u64 ^ (key >> 64) as u64, self.d);
        if self.zones[src].contains(&p, self.d) {
            return None;
        }
        let my_dist = self.dist_point_zone(&p, &self.zones[src]);
        // Greedy: the neighbor whose zone is closest to the target point.
        // With rectangular zones tiling the torus, some neighbor is always
        // strictly closer (the one across the face toward the target).
        self.neighbors[src]
            .iter()
            .map(|&nb| (self.dist_point_zone(&p, &self.zones[nb as usize]), nb))
            .filter(|&(dist, _)| dist < my_dist)
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, nb)| nb as NodeIndex)
    }

    fn neighbors(&self, idx: NodeIndex) -> Vec<NodeIndex> {
        self.neighbors[idx].iter().map(|&n| n as NodeIndex).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::key_from_u64;
    use crate::metrics::avg_route_hops;

    #[test]
    fn single_node_owns_everything() {
        let net = CanNetwork::with_nodes(1, 2, 7);
        assert_eq!(net.responsible(key_from_u64(5)), 0);
        assert!(net.route(0, key_from_u64(5)).is_empty());
    }

    #[test]
    fn zones_tile_the_torus() {
        let net = CanNetwork::with_nodes(64, 2, 3);
        // Volumes must sum to 1 and every probe point must be owned by
        // exactly one zone.
        let vol: f64 =
            net.zones.iter().map(|z| (0..net.d).map(|i| z.hi[i] - z.lo[i]).product::<f64>()).sum();
        assert!((vol - 1.0).abs() < 1e-12, "total volume {vol}");
        for k in 0..200u64 {
            let p = point_from_u64(splitmix64(k), net.d);
            let owners = net.zones.iter().filter(|z| z.contains(&p, net.d)).count();
            assert_eq!(owners, 1, "point {p:?} owned by {owners} zones");
        }
    }

    #[test]
    fn every_node_has_neighbors() {
        let net = CanNetwork::with_nodes(50, 2, 11);
        for i in 0..50 {
            assert!(!net.neighbors(i).is_empty(), "node {i} is isolated");
        }
    }

    #[test]
    fn routing_always_delivers() {
        for d in 1..=3 {
            let net = CanNetwork::with_nodes(100, d, 5);
            for k in 0..100u64 {
                let key = key_from_u64(k);
                let resp = net.responsible(key);
                for src in [0usize, 37, 99] {
                    let path = net.route(src, key);
                    assert_eq!(
                        path.last().copied().unwrap_or(src),
                        resp,
                        "d={d} key={k} src={src}"
                    );
                }
            }
        }
    }

    #[test]
    fn hops_scale_polynomially_not_logarithmically() {
        // CAN d=2: ~(d/4)·n^(1/d) = 0.5·√n hops; Pastry: log16 n. At
        // n=1024 that is ~16 vs ~2.5 — CAN must be clearly worse.
        let can = CanNetwork::with_nodes(1024, 2, 9);
        let pastry = crate::PastryNetwork::with_nodes(1024, 9);
        let hc = avg_route_hops(&can, 500, 1).mean;
        let hp = avg_route_hops(&pastry, 500, 1).mean;
        assert!(hc > 2.0 * hp, "CAN {hc} vs Pastry {hp}");
        assert!((4.0..40.0).contains(&hc), "CAN hops {hc} outside the d=2 band");
    }

    #[test]
    fn higher_dimensions_shorten_routes() {
        let h2 = avg_route_hops(&CanNetwork::with_nodes(512, 2, 4), 400, 2).mean;
        let h4 = avg_route_hops(&CanNetwork::with_nodes(512, 4, 4), 400, 2).mean;
        assert!(h4 < h2, "d=4 ({h4}) should route shorter than d=2 ({h2})");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CanNetwork::with_nodes(64, 2, 42);
        let b = CanNetwork::with_nodes(64, 2, 42);
        assert_eq!(a.zones, b.zones);
    }

    #[test]
    fn works_with_indirect_transport_semantics() {
        // next_hop results must be neighbors (the transport layer depends
        // on this to aggregate per neighbor).
        let net = CanNetwork::with_nodes(80, 2, 13);
        for src in 0..20 {
            let nbrs = net.neighbors(src);
            for k in 0..40u64 {
                if let Some(nh) = net.next_hop(src, key_from_u64(k)) {
                    assert!(nbrs.contains(&nh));
                }
            }
        }
    }
}
