//! 128-bit node identifiers and digit arithmetic for prefix routing.

/// Number of bits per digit (`b = 4` as in the Pastry paper, base 16).
pub const DIGIT_BITS: u32 = 4;

/// Digits per 128-bit id.
pub const N_DIGITS: usize = (128 / DIGIT_BITS) as usize;

/// Radix of a digit (`2^b = 16`).
pub const RADIX: usize = 1 << DIGIT_BITS;

/// A 128-bit overlay node identifier.
///
/// Ids are compared as plain unsigned integers; prefix routing reads them as
/// 32 hexadecimal digits from the most significant end, exactly as Pastry
/// does with `b = 4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u128);

impl NodeId {
    /// Derives an id by hashing an arbitrary `u64` seed (two SplitMix64
    /// rounds for the two halves). Deterministic — the same logical node
    /// always receives the same id.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let hi = splitmix64(seed ^ 0xA5A5_A5A5_A5A5_A5A5);
        let lo = splitmix64(seed.wrapping_add(0x1234_5678_9ABC_DEF0));
        NodeId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The `i`-th digit (0 = most significant).
    #[must_use]
    pub fn digit(self, i: usize) -> usize {
        debug_assert!(i < N_DIGITS);
        let shift = 128 - DIGIT_BITS as usize * (i + 1);
        ((self.0 >> shift) as usize) & (RADIX - 1)
    }

    /// Length of the common digit prefix with `other` (the Pastry `shl`
    /// function). Equal ids share all [`N_DIGITS`] digits.
    #[must_use]
    pub fn shared_prefix_len(self, other: NodeId) -> usize {
        if self.0 == other.0 {
            return N_DIGITS;
        }
        let diff = self.0 ^ other.0;
        (diff.leading_zeros() / DIGIT_BITS) as usize
    }

    /// Absolute numeric distance `|a − b|` (Pastry's closeness measure).
    #[must_use]
    pub fn distance(self, other: NodeId) -> u128 {
        self.0.abs_diff(other.0)
    }

    /// Renders as 32 hex digits.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Abbreviate for logs: first 8 digits.
        write!(f, "{:08x}…", (self.0 >> 96) as u32)
    }
}

/// SplitMix64 mixer (same algorithm as `dpr-graph`; duplicated to keep the
/// overlay crate dependency-free).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives a 128-bit DHT key from a `u64` (e.g. a page-group id). Same
/// construction as [`NodeId::from_seed`] but domain-separated so groups and
/// nodes never collide structurally.
#[must_use]
pub fn key_from_u64(x: u64) -> u128 {
    let hi = splitmix64(x ^ 0x0FF1_CE00_0FF1_CE00);
    let lo = splitmix64(x.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D);
    (u128::from(hi) << 64) | u128::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction() {
        let id = NodeId(0x0123_4567_89AB_CDEF_0000_0000_0000_0000);
        assert_eq!(id.digit(0), 0x0);
        assert_eq!(id.digit(1), 0x1);
        assert_eq!(id.digit(7), 0x7);
        assert_eq!(id.digit(15), 0xF);
        assert_eq!(id.digit(16), 0x0);
        assert_eq!(id.digit(31), 0x0);
    }

    #[test]
    fn shared_prefix() {
        let a = NodeId(0xAAAA_0000_0000_0000_0000_0000_0000_0000);
        let b = NodeId(0xAAAB_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(b), 3);
        assert_eq!(a.shared_prefix_len(a), N_DIGITS);
        let c = NodeId(0x0AAA_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(c), 0);
    }

    #[test]
    fn prefix_consistency_with_digits() {
        let a = NodeId::from_seed(1);
        let b = NodeId::from_seed(2);
        let l = a.shared_prefix_len(b);
        for i in 0..l {
            assert_eq!(a.digit(i), b.digit(i));
        }
        if l < N_DIGITS {
            assert_ne!(a.digit(l), b.digit(l));
        }
    }

    #[test]
    fn distance_symmetry() {
        let a = NodeId(100);
        let b = NodeId(250);
        assert_eq!(a.distance(b), 150);
        assert_eq!(b.distance(a), 150);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    fn seeded_ids_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..100_000u64 {
            assert!(seen.insert(NodeId::from_seed(s)), "collision at seed {s}");
        }
    }

    #[test]
    fn keys_well_spread() {
        // First digit of derived keys should hit all 16 values over a small
        // sample — a weak but fast uniformity check.
        let mut seen = [false; RADIX];
        for x in 0..256u64 {
            seen[NodeId(key_from_u64(x)).digit(0)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(NodeId(0).to_hex(), "0".repeat(32));
        assert_eq!(NodeId(0xFF).to_hex().len(), 32);
    }
}
