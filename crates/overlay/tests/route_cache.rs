//! Property tests for [`RouteCache`] invalidation under churn: after every
//! `join`/`depart`/`repair` the cache must answer every lookup exactly as
//! the overlay would fresh — a cached route may never outlive the
//! membership that produced it.

use dpr_overlay::{ChordNetwork, NodeIndex, Overlay, PastryNetwork, RouteCache};
use proptest::prelude::*;

/// One churn step in a randomized schedule.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Pastry only: a new node joins via an alive bootstrap.
    Join(u64),
    /// An alive node (picked by index into the alive set) departs.
    Depart(u8),
    /// Pastry only: eager repair of routing state.
    Repair,
}

fn arb_pastry_events() -> impl Strategy<Value = Vec<Ev>> {
    prop::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Ev::Join),
            any::<u8>().prop_map(Ev::Depart),
            Just(Ev::Repair),
        ],
        1..10,
    )
}

fn alive_handles(net: &dyn Overlay, n_handles: usize) -> Vec<NodeIndex> {
    (0..n_handles).filter(|&h| net.is_live(h)).collect()
}

/// Every cached answer must equal the freshly computed one, for every
/// alive source and probe key. Calling this both warms the cache (so the
/// next churn event genuinely invalidates populated state) and verifies it.
fn assert_cache_matches_fresh(
    cache: &mut RouteCache,
    net: &dyn Overlay,
    srcs: &[NodeIndex],
    keys: &[u128],
) -> Result<(), TestCaseError> {
    for &s in srcs {
        for &k in keys {
            prop_assert_eq!(cache.next_hop(net, s, k), net.next_hop(s, k), "next_hop src {}", s);
            let cached = cache.route(net, s, k);
            let fresh = net.route(s, k);
            prop_assert_eq!(cached.as_ref(), fresh.as_slice(), "route src {}", s);
        }
    }
    Ok(())
}

/// The vendored proptest stub has no `u128: Arbitrary`; widen sampled
/// `u64` pairs into full-domain probe keys instead.
fn arb_keys() -> impl Strategy<Value = Vec<u128>> {
    prop::collection::vec(
        (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| (u128::from(hi) << 64) | u128::from(lo)),
        2..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pastry_cache_survives_churn(
        n in 4usize..16,
        seed in any::<u64>(),
        events in arb_pastry_events(),
        mut keys in arb_keys(),
    ) {
        let mut net = PastryNetwork::with_nodes(n, seed);
        let mut n_handles = n;
        // Probe owned keys too, so delivery decisions (`next_hop == None`)
        // get cached and re-checked, not just forwarding decisions.
        keys.push(net.node_key(0));
        let mut cache = RouteCache::new();
        let mut applied = 0;
        assert_cache_matches_fresh(&mut cache, &net, &alive_handles(&net, n_handles), &keys)?;
        for ev in events {
            let alive = alive_handles(&net, n_handles);
            match ev {
                Ev::Join(s) => {
                    net.join(alive[0], s);
                    n_handles += 1;
                }
                Ev::Depart(pick) => {
                    if alive.len() <= 2 {
                        continue;
                    }
                    net.depart(alive[pick as usize % alive.len()]);
                }
                Ev::Repair => net.repair(),
            }
            applied += 1;
            keys.push(net.node_key(n_handles - 1));
            assert_cache_matches_fresh(
                &mut cache,
                &net,
                &alive_handles(&net, n_handles),
                &keys,
            )?;
        }
        if applied > 0 {
            prop_assert!(
                cache.stats().invalidations > 0,
                "churn over a warm cache must flush it at least once"
            );
        }
    }

    #[test]
    fn chord_cache_survives_departures(
        n in 4usize..16,
        seed in any::<u64>(),
        departs in prop::collection::vec(any::<u8>(), 1..8),
        mut keys in arb_keys(),
    ) {
        let mut net = ChordNetwork::with_nodes(n, seed);
        keys.push(net.node_key(0));
        let mut cache = RouteCache::new();
        let mut applied = 0;
        assert_cache_matches_fresh(&mut cache, &net, &alive_handles(&net, n), &keys)?;
        for pick in departs {
            let alive = alive_handles(&net, n);
            if alive.len() <= 2 {
                break;
            }
            net.depart(alive[pick as usize % alive.len()]);
            applied += 1;
            assert_cache_matches_fresh(&mut cache, &net, &alive_handles(&net, n), &keys)?;
        }
        if applied > 0 {
            prop_assert!(cache.stats().invalidations > 0);
        }
    }
}
