//! The hidden web `W` — Fig 1's outer ellipse.
//!
//! Pages and links are *functions of the page id*, computed from hash
//! mixes, so a multi-billion-page web costs O(#sites) memory and O(degree)
//! time per adjacency query. Crawlers then materialize whatever subset
//! they reach.

use dpr_graph::urls::{self, splitmix64};

/// Identifier of a page in the hidden web (may exceed any crawl budget).
pub type WebPageId = u64;

/// Parameters of the hidden web.
#[derive(Debug, Clone, Copy)]
pub struct HiddenWebConfig {
    /// Total pages in `W`.
    pub total_pages: u64,
    /// Number of sites.
    pub n_sites: usize,
    /// Mean out-degree (links per page).
    pub mean_out_degree: f64,
    /// Fraction of links staying on the source page's site (\[16\]: ~0.9).
    pub intra_site_fraction: f64,
    /// Zipf exponent of site sizes.
    pub zipf_exponent: f64,
    /// Master seed; the web is a pure function of (config, seed).
    pub seed: u64,
}

impl Default for HiddenWebConfig {
    fn default() -> Self {
        Self {
            total_pages: 1_000_000,
            n_sites: 100,
            mean_out_degree: 15.0,
            intra_site_fraction: 0.9,
            zipf_exponent: 0.8,
            seed: 0x00E8_517E_B00C_5EED,
        }
    }
}

/// A deterministic, lazily-evaluated web graph.
#[derive(Debug, Clone)]
pub struct HiddenWeb {
    cfg: HiddenWebConfig,
    /// First page id of each site (sites own contiguous id ranges), plus a
    /// trailing sentinel = total_pages.
    site_starts: Vec<u64>,
}

impl HiddenWeb {
    /// Builds the site layout (the only stored state).
    #[must_use]
    pub fn new(cfg: HiddenWebConfig) -> Self {
        assert!(cfg.n_sites >= 1);
        assert!(cfg.total_pages >= cfg.n_sites as u64);
        assert!((0.0..=1.0).contains(&cfg.intra_site_fraction));
        assert!(cfg.mean_out_degree >= 0.0);
        let weights: Vec<f64> =
            (1..=cfg.n_sites).map(|r| 1.0 / (r as f64).powf(cfg.zipf_exponent)).collect();
        let wsum: f64 = weights.iter().sum();
        let spare = cfg.total_pages - cfg.n_sites as u64;
        let mut starts = Vec::with_capacity(cfg.n_sites + 1);
        let mut acc = 0u64;
        for w in &weights {
            starts.push(acc);
            acc += 1 + ((w / wsum) * spare as f64).floor() as u64;
        }
        // Absorb rounding remainder into the last site.
        starts.push(cfg.total_pages);
        Self { cfg, site_starts: starts }
    }

    /// Configuration.
    #[must_use]
    pub fn config(&self) -> &HiddenWebConfig {
        &self.cfg
    }

    /// Total pages in `W`.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.cfg.total_pages
    }

    /// Number of sites.
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.cfg.n_sites
    }

    /// Site of a page (binary search over contiguous ranges).
    #[must_use]
    pub fn site_of(&self, p: WebPageId) -> usize {
        debug_assert!(p < self.cfg.total_pages);
        match self.site_starts.binary_search(&p) {
            Ok(i) => i.min(self.cfg.n_sites - 1),
            Err(i) => i - 1,
        }
    }

    /// `[first, end)` page range of a site.
    #[must_use]
    pub fn site_range(&self, site: usize) -> (u64, u64) {
        (self.site_starts[site], self.site_starts[site + 1])
    }

    /// Host name of a site.
    #[must_use]
    pub fn site_host(&self, site: usize) -> String {
        urls::site_host(site as u32)
    }

    /// The canonical seed page of a site (its first page — the "home
    /// page" a crawler starts from).
    #[must_use]
    pub fn site_seed_page(&self, site: usize) -> WebPageId {
        self.site_starts[site]
    }

    /// Out-degree of a page: deterministic, mean ≈ `mean_out_degree`,
    /// ranging over [mean/2, 3·mean/2).
    #[must_use]
    pub fn out_degree(&self, p: WebPageId) -> usize {
        let h = splitmix64(p ^ self.cfg.seed ^ 0xDE47EE);
        let span = self.cfg.mean_out_degree;
        (span / 2.0 + span * ((h >> 8) as f64 / (1u64 << 56) as f64)) as usize
    }

    /// The `i`-th out-link of page `p`. Intra-site targets are biased
    /// toward low in-site offsets (the "home page and hubs collect links"
    /// power law); cross-site targets are biased the same way within a
    /// hash-chosen foreign site.
    #[must_use]
    pub fn link_target(&self, p: WebPageId, i: usize) -> WebPageId {
        let h = splitmix64(p.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) ^ self.cfg.seed);
        let intra = (h & 0xFFFF) as f64 / 65536.0 < self.cfg.intra_site_fraction;
        let site = if intra {
            self.site_of(p)
        } else {
            (splitmix64(h ^ 0x517E) % self.cfg.n_sites as u64) as usize
        };
        let (lo, hi) = self.site_range(site);
        let span = hi - lo;
        // Quadratic bias toward the front of the site: u² concentrates
        // targets on early pages ⇒ heavy-tailed in-degree.
        let u = (splitmix64(h ^ 0x7A46E7) >> 11) as f64 / (1u64 << 53) as f64;
        lo + ((u * u) * span as f64) as u64
    }

    /// All out-links of a page (materialized; self-links removed).
    #[must_use]
    pub fn out_links(&self, p: WebPageId) -> Vec<WebPageId> {
        (0..self.out_degree(p)).map(|i| self.link_target(p, i)).filter(|&v| v != p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HiddenWeb {
        HiddenWeb::new(HiddenWebConfig {
            total_pages: 10_000,
            n_sites: 20,
            ..HiddenWebConfig::default()
        })
    }

    #[test]
    fn site_ranges_tile_the_page_space() {
        let w = small();
        let mut covered = 0u64;
        for s in 0..w.n_sites() {
            let (lo, hi) = w.site_range(s);
            assert_eq!(lo, covered);
            assert!(hi > lo, "site {s} empty");
            covered = hi;
        }
        assert_eq!(covered, w.total_pages());
    }

    #[test]
    fn site_of_is_consistent_with_ranges() {
        let w = small();
        for p in (0..w.total_pages()).step_by(97) {
            let s = w.site_of(p);
            let (lo, hi) = w.site_range(s);
            assert!(lo <= p && p < hi, "page {p} not in its site range");
        }
    }

    #[test]
    fn adjacency_is_deterministic() {
        let w1 = small();
        let w2 = small();
        for p in (0..w1.total_pages()).step_by(501) {
            assert_eq!(w1.out_links(p), w2.out_links(p));
        }
    }

    #[test]
    fn mean_degree_near_config() {
        let w = small();
        let total: usize = (0..2_000u64).map(|p| w.out_degree(p)).sum();
        let mean = total as f64 / 2_000.0;
        assert!((mean - 15.0).abs() < 1.5, "mean degree {mean}");
    }

    #[test]
    fn intra_site_fraction_near_config() {
        let w = small();
        let mut intra = 0usize;
        let mut total = 0usize;
        for p in (0..w.total_pages()).step_by(13) {
            let sp = w.site_of(p);
            for v in w.out_links(p) {
                total += 1;
                if w.site_of(v) == sp {
                    intra += 1;
                }
            }
        }
        let f = intra as f64 / total as f64;
        assert!((0.85..=0.95).contains(&f), "intra-site fraction {f}");
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let w = small();
        let mut indeg = vec![0u32; w.total_pages() as usize];
        for p in 0..w.total_pages() {
            for v in w.out_links(p) {
                indeg[v as usize] += 1;
            }
        }
        let mean = indeg.iter().map(|&d| f64::from(d)).sum::<f64>() / indeg.len() as f64;
        let max = f64::from(*indeg.iter().max().unwrap());
        assert!(max > 10.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn huge_webs_cost_no_memory() {
        // A 3-billion-page web (Google's 2003 index size) must build
        // instantly and answer adjacency queries lazily.
        let w = HiddenWeb::new(HiddenWebConfig {
            total_pages: 3_000_000_000,
            n_sites: 1_000,
            ..HiddenWebConfig::default()
        });
        assert_eq!(w.total_pages(), 3_000_000_000);
        let links = w.out_links(2_999_999_999);
        assert!(links.iter().all(|&v| v < w.total_pages()));
    }
}
