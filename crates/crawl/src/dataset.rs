//! Crawl → dataset conversion: materializes the crawled subset `C ⊂ W` as
//! a [`WebGraph`], measuring the internal/external link split instead of
//! configuring it. Links whose destination was never fetched become
//! external out-links — exactly the rank leakage that makes the paper's
//! converged average rank land at ≈ 0.3 instead of 1.

use std::collections::HashMap;

use dpr_graph::{GraphBuilder, GraphDelta, WebGraph};

use crate::web::{HiddenWeb, WebPageId};

/// Builds a [`WebGraph`] from the set of fetched pages. Page ids are
/// renumbered densely in the order given (crawl order); sites keep their
/// hidden-web identities.
#[must_use]
pub fn crawl_to_graph(web: &HiddenWeb, fetched: &[WebPageId]) -> WebGraph {
    let mut b = GraphBuilder::with_capacity(fetched.len(), fetched.len() * 16);
    for s in 0..web.n_sites() {
        b.add_site(web.site_host(s));
    }
    let mut dense: HashMap<WebPageId, u32> = HashMap::with_capacity(fetched.len());
    for &wp in fetched {
        let id = b.add_page(web.site_of(wp) as u32);
        let prev = dense.insert(wp, id);
        assert!(prev.is_none(), "page {wp} fetched twice in the dataset");
    }
    for &wp in fetched {
        let u = dense[&wp];
        for v in web.out_links(wp) {
            match dense.get(&v) {
                Some(&dv) => b.add_link(u, dv),
                None => b.add_external_links(u, 1),
            }
        }
    }
    b.build()
}

/// The [`GraphDelta`] a *continued* crawl produces: `newly_fetched`
/// extends the crawl that built `old` (whose fetch order was
/// `old_fetched`), and the returned delta upgrades `old` to the extended
/// dataset in place — newly fetched pages arrive as inserts, and already-
/// crawled pages whose former external links now resolve inside the
/// dataset arrive as row rewrites (their rank mass stops leaking). Feeding
/// this into a running netrun (`NetRunConfig::deltas`) re-ranks the
/// affected groups incrementally instead of rebuilding the dataset and
/// restarting cold; dense ids of already-crawled pages are pinned by
/// construction, which is exactly the id contract the delta model
/// requires.
///
/// # Panics
/// If `old` and `old_fetched` disagree on the page count, or a page
/// appears twice across the two fetch lists.
#[must_use]
pub fn crawl_growth_delta(
    web: &HiddenWeb,
    old: &WebGraph,
    old_fetched: &[WebPageId],
    newly_fetched: &[WebPageId],
) -> GraphDelta {
    assert_eq!(
        old.n_pages(),
        old_fetched.len(),
        "old graph and its fetch list must describe the same crawl"
    );
    let mut all = Vec::with_capacity(old_fetched.len() + newly_fetched.len());
    all.extend_from_slice(old_fetched);
    all.extend_from_slice(newly_fetched);
    let new = crawl_to_graph(web, &all);
    GraphDelta::diff(old, &new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::{crawl_bfs, CrawlBudget};
    use crate::web::HiddenWebConfig;
    use dpr_graph::GraphStats;

    fn crawled(budget: usize) -> (HiddenWeb, WebGraph) {
        let web = HiddenWeb::new(HiddenWebConfig {
            total_pages: 20_000,
            n_sites: 25,
            ..HiddenWebConfig::default()
        });
        let crawl = crawl_bfs(&web, CrawlBudget { max_pages: budget });
        let g = crawl_to_graph(&web, &crawl.fetched);
        (web, g)
    }

    #[test]
    fn partial_crawl_leaks_links() {
        let (_, g) = crawled(5_000);
        assert_eq!(g.n_pages(), 5_000);
        let s = GraphStats::compute(&g);
        // A quarter of the web crawled ⇒ a solid share of links must point
        // outside the dataset (the paper's 7M of 15M situation).
        assert!(
            s.internal_fraction < 0.9,
            "partial crawl should leak links, internal={}",
            s.internal_fraction
        );
        assert!(s.n_external_links > 0);
    }

    #[test]
    fn fuller_crawl_leaks_less() {
        let (_, partial) = crawled(3_000);
        let (_, fuller) = crawled(12_000);
        let fp = GraphStats::compute(&partial).internal_fraction;
        let ff = GraphStats::compute(&fuller).internal_fraction;
        assert!(ff > fp, "more coverage must mean fewer external links: {fp} vs {ff}");
    }

    #[test]
    fn intra_site_locality_survives_the_crawl() {
        let (_, g) = crawled(8_000);
        let f = g.intra_site_fraction();
        // BFS fetches whole sites breadth-first, so the crawled subgraph
        // keeps (or slightly exceeds) the hidden web's 90% locality.
        assert!(f > 0.8, "intra-site fraction {f}");
    }

    #[test]
    fn total_out_degree_preserved() {
        // d(u) in the dataset = hidden-web out-degree (minus self-links):
        // internal + external must reconstruct it.
        let web = HiddenWeb::new(HiddenWebConfig {
            total_pages: 2_000,
            n_sites: 8,
            ..HiddenWebConfig::default()
        });
        let crawl = crawl_bfs(&web, CrawlBudget { max_pages: 500 });
        let g = crawl_to_graph(&web, &crawl.fetched);
        for (dense, &wp) in crawl.fetched.iter().enumerate() {
            assert_eq!(
                g.out_degree(dense as u32) as usize,
                web.out_links(wp).len(),
                "degree mismatch for page {wp}"
            );
        }
    }

    #[test]
    fn continued_crawl_delta_equals_rebuilt_dataset() {
        // Crawl 3k pages, continue to 4k: applying the growth delta to
        // the 3k dataset must reproduce the 4k dataset exactly, with the
        // new pages arriving as inserts and at least one old page's row
        // rewritten (a former external link resolving internally).
        let web = HiddenWeb::new(HiddenWebConfig {
            total_pages: 20_000,
            n_sites: 25,
            ..HiddenWebConfig::default()
        });
        let first = crawl_bfs(&web, CrawlBudget { max_pages: 3_000 });
        let full = crawl_bfs(&web, CrawlBudget { max_pages: 4_000 });
        assert_eq!(&full.fetched[..3_000], &first.fetched[..], "BFS continuation is a superset");
        let old = crawl_to_graph(&web, &first.fetched);
        let delta = crawl_growth_delta(&web, &old, &first.fetched, &full.fetched[3_000..]);
        let upgraded = delta.apply(&old);
        assert_eq!(upgraded, crawl_to_graph(&web, &full.fetched));
        assert_eq!(upgraded.n_pages(), 4_000);
        let inserts = delta
            .ops
            .iter()
            .filter(|op| matches!(op, dpr_graph::DeltaOp::InsertPage { .. }))
            .count();
        assert_eq!(inserts, 1_000, "every newly fetched page arrives as one insert");
        assert!(
            delta.ops.iter().any(|op| matches!(op, dpr_graph::DeltaOp::SetLinks { .. })),
            "continuing the crawl must resolve some external links internally"
        );
    }

    #[test]
    fn end_to_end_crawl_then_rank_pipeline_compatible() {
        // The produced graph must be a fully valid ranking input.
        let (_, g) = crawled(4_000);
        assert!(g.n_internal_links() > 0);
        assert!(g.links().all(|(u, v)| (u as usize) < g.n_pages() && (v as usize) < g.n_pages()));
        // Sites of all pages are valid.
        for p in 0..g.n_pages() as u32 {
            assert!((g.site(p) as usize) < g.n_sites());
        }
    }
}
