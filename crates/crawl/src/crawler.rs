//! Crawlers over a [`HiddenWeb`]: a polite single-crawler BFS and the three
//! parallel-crawler coordination modes of Cho & Garcia-Molina \[16\].
//!
//! \[16\] is the paper's source for both the 90% intra-site locality and
//! the hash-by-site partitioning of crawl responsibility; its three modes
//! trade coverage, duplicated work and communication:
//!
//! * **Firewall** — each agent fetches only pages of its own sites and
//!   silently drops discovered foreign URLs. Zero communication, zero
//!   overlap, but pages reachable only through foreign sites are lost.
//! * **Cross-over** — agents may fetch foreign pages. Full coverage, zero
//!   communication, but the same page may be fetched by several agents
//!   (overlap = wasted bandwidth).
//! * **Exchange** — agents forward discovered foreign URLs to the owning
//!   agent. Full coverage, zero overlap, at the price of inter-agent
//!   messages — which stay cheap *because* ~90% of links are intra-site,
//!   the same locality §4.1 exploits for ranking.

use std::collections::{HashSet, VecDeque};

use crate::web::{HiddenWeb, WebPageId};

/// Limits of a crawl session.
#[derive(Debug, Clone, Copy)]
pub struct CrawlBudget {
    /// Maximum pages to fetch (per agent for parallel crawls).
    pub max_pages: usize,
}

/// What a crawl produced.
#[derive(Debug, Clone)]
pub struct CrawlOutcome {
    /// Pages fetched, in fetch order (unique except in cross-over mode,
    /// where `duplicates` counts re-fetches that were skipped).
    pub fetched: Vec<WebPageId>,
    /// Coverage: `fetched / reachable-budgeted` is up to the caller; this
    /// is simply `fetched.len() / web.total_pages()`.
    pub coverage: f64,
    /// Pages fetched by more than one agent (cross-over mode only).
    pub overlap: u64,
    /// URLs forwarded between agents (exchange mode only).
    pub urls_exchanged: u64,
}

/// Polite single-crawler BFS: site queues are served round-robin (one
/// fetch per site per round — the politeness discipline that avoids
/// hammering a host), starting from every site's seed page.
#[must_use]
pub fn crawl_bfs(web: &HiddenWeb, budget: CrawlBudget) -> CrawlOutcome {
    let mut queues: Vec<VecDeque<WebPageId>> = vec![VecDeque::new(); web.n_sites()];
    let mut seen: HashSet<WebPageId> = HashSet::new();
    for (s, q) in queues.iter_mut().enumerate() {
        let seed = web.site_seed_page(s);
        q.push_back(seed);
        seen.insert(seed);
    }
    let mut fetched = Vec::new();
    let mut progress = true;
    while fetched.len() < budget.max_pages && progress {
        progress = false;
        // Discovered URLs are enqueued at the end of the round (they join
        // their own site's queue, which may differ from the one being
        // served).
        let mut discovered: Vec<WebPageId> = Vec::new();
        for q in queues.iter_mut() {
            if fetched.len() >= budget.max_pages {
                break;
            }
            let Some(p) = q.pop_front() else { continue };
            progress = true;
            fetched.push(p);
            for v in web.out_links(p) {
                if seen.insert(v) {
                    discovered.push(v);
                }
            }
        }
        for v in discovered {
            queues[web.site_of(v)].push_back(v);
        }
    }
    CrawlOutcome {
        coverage: fetched.len() as f64 / web.total_pages() as f64,
        fetched,
        overlap: 0,
        urls_exchanged: 0,
    }
}

/// Coordination mode of a parallel crawl (\[16\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Drop foreign URLs.
    Firewall,
    /// Fetch foreign URLs yourself (duplicates possible).
    CrossOver,
    /// Forward foreign URLs to the owning agent.
    Exchange,
}

/// A parallel crawl by `n_agents` cooperating crawlers; sites are assigned
/// to agents by site-hash, the same stable mapping §4.1 recommends for
/// ranking.
#[derive(Debug, Clone)]
pub struct ParallelCrawl {
    /// Per-agent outcomes (fetch lists are per-agent).
    pub per_agent: Vec<Vec<WebPageId>>,
    /// Union of fetched pages.
    pub fetched: Vec<WebPageId>,
    /// Merged metrics.
    pub outcome: CrawlOutcome,
}

/// Runs a parallel crawl. Each agent runs polite BFS over its own sites;
/// agents proceed in lockstep rounds so exchange-mode forwarding is
/// deterministic.
#[must_use]
pub fn parallel_crawl(
    web: &HiddenWeb,
    n_agents: usize,
    mode: Mode,
    budget: CrawlBudget,
) -> ParallelCrawl {
    assert!(n_agents >= 1);
    let owner_of_site =
        |s: usize| (dpr_graph::urls::fnv1a(web.site_host(s).as_bytes()) % n_agents as u64) as usize;

    // Per-agent per-site queues; in cross-over mode an agent may also queue
    // foreign pages (tracked in a shared "who fetched" map for overlap).
    let mut queues: Vec<VecDeque<WebPageId>> = vec![VecDeque::new(); n_agents];
    let mut seen: Vec<HashSet<WebPageId>> = vec![HashSet::new(); n_agents];
    let mut fetched_by: std::collections::HashMap<WebPageId, u32> =
        std::collections::HashMap::new();
    for s in 0..web.n_sites() {
        let a = owner_of_site(s);
        let seed = web.site_seed_page(s);
        if seen[a].insert(seed) {
            queues[a].push_back(seed);
        }
    }

    let mut per_agent: Vec<Vec<WebPageId>> = vec![Vec::new(); n_agents];
    let mut urls_exchanged = 0u64;
    let mut progress = true;
    while progress {
        progress = false;
        // One fetch per agent per round (lockstep politeness).
        let mut forwards: Vec<(usize, WebPageId)> = Vec::new();
        for a in 0..n_agents {
            if per_agent[a].len() >= budget.max_pages {
                continue;
            }
            let Some(p) = queues[a].pop_front() else { continue };
            progress = true;
            per_agent[a].push(p);
            *fetched_by.entry(p).or_insert(0) += 1;
            for v in web.out_links(p) {
                let owner = owner_of_site(web.site_of(v));
                match mode {
                    Mode::Firewall => {
                        if owner == a && seen[a].insert(v) {
                            queues[a].push_back(v);
                        }
                    }
                    Mode::CrossOver => {
                        // Fetch it yourself, whoever owns it.
                        if seen[a].insert(v) {
                            queues[a].push_back(v);
                        }
                    }
                    Mode::Exchange => {
                        if owner == a {
                            if seen[a].insert(v) {
                                queues[a].push_back(v);
                            }
                        } else {
                            forwards.push((owner, v));
                        }
                    }
                }
            }
        }
        for (owner, v) in forwards {
            urls_exchanged += 1;
            if seen[owner].insert(v) {
                queues[owner].push_back(v);
                progress = true;
            }
        }
    }

    let mut fetched: Vec<WebPageId> = fetched_by.keys().copied().collect();
    fetched.sort_unstable();
    let overlap = fetched_by.values().map(|&c| u64::from(c.saturating_sub(1))).sum();
    let outcome = CrawlOutcome {
        coverage: fetched.len() as f64 / web.total_pages() as f64,
        fetched: fetched.clone(),
        overlap,
        urls_exchanged,
    };
    ParallelCrawl { per_agent, fetched, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::HiddenWebConfig;

    fn small_web() -> HiddenWeb {
        HiddenWeb::new(HiddenWebConfig {
            total_pages: 5_000,
            n_sites: 16,
            ..HiddenWebConfig::default()
        })
    }

    #[test]
    fn bfs_respects_budget_and_uniqueness() {
        let web = small_web();
        let out = crawl_bfs(&web, CrawlBudget { max_pages: 800 });
        assert_eq!(out.fetched.len(), 800);
        let set: HashSet<_> = out.fetched.iter().collect();
        assert_eq!(set.len(), 800, "BFS fetched a page twice");
        assert!((out.coverage - 0.16).abs() < 0.01);
    }

    #[test]
    fn bfs_unbounded_reaches_most_of_the_web() {
        let web = small_web();
        let out = crawl_bfs(&web, CrawlBudget { max_pages: usize::MAX });
        // Some pages have no in-links and are unreachable; the bulk is
        // reachable from the site seeds.
        assert!(out.coverage > 0.5, "coverage {}", out.coverage);
    }

    #[test]
    fn exchange_mode_full_coverage_no_overlap_some_communication() {
        let web = small_web();
        let res = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: usize::MAX });
        let solo = crawl_bfs(&web, CrawlBudget { max_pages: usize::MAX });
        assert_eq!(res.outcome.overlap, 0);
        assert!(res.outcome.urls_exchanged > 0);
        // Same reachable set as the single crawler.
        assert_eq!(res.fetched.len(), solo.fetched.len());
    }

    #[test]
    fn firewall_mode_loses_coverage_but_never_communicates() {
        let web = small_web();
        let firewall =
            parallel_crawl(&web, 4, Mode::Firewall, CrawlBudget { max_pages: usize::MAX });
        let exchange =
            parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: usize::MAX });
        assert_eq!(firewall.outcome.urls_exchanged, 0);
        assert_eq!(firewall.outcome.overlap, 0);
        assert!(
            firewall.fetched.len() < exchange.fetched.len(),
            "firewall {} vs exchange {}",
            firewall.fetched.len(),
            exchange.fetched.len()
        );
    }

    #[test]
    fn crossover_mode_overlaps_but_needs_no_communication() {
        let web = small_web();
        let res = parallel_crawl(&web, 4, Mode::CrossOver, CrawlBudget { max_pages: usize::MAX });
        assert_eq!(res.outcome.urls_exchanged, 0);
        assert!(res.outcome.overlap > 0, "cross-over should duplicate work");
        let solo = crawl_bfs(&web, CrawlBudget { max_pages: usize::MAX });
        assert_eq!(res.fetched.len(), solo.fetched.len());
    }

    #[test]
    fn exchange_communication_is_cheap_thanks_to_locality() {
        // ~90% intra-site links ⇒ roughly one exchanged URL per fetched
        // page (the [16] statistic the paper leans on in §4.4's "one page
        // has only about 1 URL pointing to other sites").
        let web = small_web();
        let res = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: usize::MAX });
        let per_page = res.outcome.urls_exchanged as f64 / res.fetched.len() as f64;
        assert!(per_page < 3.0, "exchanged {per_page} URLs/page — locality broken");
    }

    #[test]
    fn agents_partition_the_fetch_in_exchange_mode() {
        let web = small_web();
        let res = parallel_crawl(&web, 3, Mode::Exchange, CrawlBudget { max_pages: usize::MAX });
        let mut all: Vec<_> = res.per_agent.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), res.fetched.len());
    }

    #[test]
    fn deterministic_per_configuration() {
        let web = small_web();
        let a = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: 500 });
        let b = parallel_crawl(&web, 4, Mode::Exchange, CrawlBudget { max_pages: 500 });
        assert_eq!(a.fetched, b.fetched);
        assert_eq!(a.outcome.urls_exchanged, b.outcome.urls_exchanged);
    }

    #[test]
    fn single_agent_equals_bfs_reachability() {
        let web = small_web();
        let par = parallel_crawl(&web, 1, Mode::Firewall, CrawlBudget { max_pages: usize::MAX });
        let solo = crawl_bfs(&web, CrawlBudget { max_pages: usize::MAX });
        assert_eq!(par.fetched.len(), solo.fetched.len());
    }
}
