//! Web crawling substrate.
//!
//! The paper's Fig 1 distinguishes three scopes: the whole web `W`, the
//! pages crawled by the search engine `C ⊂ W`, and one ranker's page group
//! `G ⊂ C`. Everything downstream — the 15 links/page, the ~90% intra-site
//! locality, the 47% of links escaping the crawl, even the requirement that
//! re-crawled pages keep their ranker — is a property of *how `C` is carved
//! out of `W` by crawlers*. This crate models that process instead of
//! assuming its outputs:
//!
//! * [`web::HiddenWeb`] — a deterministic, *lazily generated* web of
//!   arbitrary size (adjacency is computed from hashes, never stored), with
//!   site structure, Zipf site sizes and Cho & Garcia-Molina's \[16\]
//!   ≈ 90% intra-site link locality;
//! * [`crawler`] — a polite BFS crawler over a hidden web, plus the three
//!   **parallel crawler** coordination modes of \[16\]: *firewall* (agents
//!   never exchange URLs; cross-partition links are lost), *cross-over*
//!   (agents may fetch foreign pages, duplicating work) and *exchange*
//!   (agents forward discovered foreign URLs to their owners — the mode
//!   whose communication §4.1 wants to minimize);
//! * [`dataset`] — converts a finished crawl into a
//!   [`WebGraph`](dpr_graph::WebGraph) whose internal/external link split
//!   is *measured* (links to uncrawled pages become the external counts
//!   that leak rank in open-system PageRank).

//!
//! # Example
//!
//! ```
//! use dpr_crawl::{crawl_bfs, crawl_to_graph, CrawlBudget, HiddenWeb, HiddenWebConfig};
//!
//! let web = HiddenWeb::new(HiddenWebConfig {
//!     total_pages: 5_000,
//!     n_sites: 10,
//!     ..HiddenWebConfig::default()
//! });
//! let crawl = crawl_bfs(&web, CrawlBudget { max_pages: 1_000 });
//! let dataset = crawl_to_graph(&web, &crawl.fetched);
//! assert_eq!(dataset.n_pages(), 1_000);
//! // A partial crawl leaks links — the open-system premise.
//! assert!(dataset.n_external_links() > 0);
//! ```

#![warn(missing_docs)]

pub mod crawler;
pub mod dataset;
pub mod web;

pub use crawler::{crawl_bfs, CrawlBudget, CrawlOutcome, Mode, ParallelCrawl};
pub use dataset::{crawl_growth_delta, crawl_to_graph};
pub use web::{HiddenWeb, HiddenWebConfig};
