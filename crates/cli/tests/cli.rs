//! Integration tests for the `dpr` CLI subcommands, driven through the
//! library API (no subprocess spawning, so they run everywhere).

use dpr_cli::args::Args;
use dpr_cli::commands;

fn args(s: &[&str]) -> Args {
    Args::parse(s.iter().map(ToString::to_string))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("dpr-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn generate_stats_partition_rank_simulate_pipeline() {
    let path = tmp("pipeline.graph");
    commands::generate(&args(&["generate", "--pages", "3000", "--sites", "20", "--out", &path]))
        .unwrap();
    commands::stats(&args(&["stats", &path])).unwrap();
    commands::partition(&args(&["partition", &path, "--k", "8", "--strategy", "site"])).unwrap();
    commands::rank(&args(&["rank", &path, "--top", "5"])).unwrap();
    commands::rank(&args(&["rank", &path, "--algo", "hits", "--top", "3"])).unwrap();
    commands::rank(&args(&["rank", &path, "--algo", "pagerank", "--accelerated"])).unwrap();
    commands::simulate(&args(&["simulate", &path, "--k", "10", "--p", "0.8", "--t-end", "60"]))
        .unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn crawl_subcommand_produces_rankable_dataset() {
    let path = tmp("crawled.graph");
    commands::crawl(&args(&[
        "crawl",
        "--web-pages",
        "5000",
        "--sites",
        "16",
        "--agents",
        "3",
        "--budget",
        "400",
        "--out",
        &path,
    ]))
    .unwrap();
    commands::rank(&args(&["rank", &path, "--top", "3"])).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn simulate_save_and_warm_start_roundtrip() {
    let graph = tmp("warm.graph");
    let ranks = tmp("warm.ranks");
    commands::generate(&args(&["generate", "--pages", "2000", "--sites", "15", "--out", &graph]))
        .unwrap();
    commands::simulate(&args(&[
        "simulate",
        &graph,
        "--k",
        "8",
        "--t-end",
        "80",
        "--save-ranks",
        &ranks,
    ]))
    .unwrap();
    let saved = dpr_core::ranks_io::load(&ranks).unwrap();
    assert_eq!(saved.len(), 2000);
    assert!(saved.iter().any(|&r| r > 0.0));
    // Second invocation warm-starts from the saved file.
    commands::simulate(&args(&[
        "simulate",
        &graph,
        "--k",
        "8",
        "--t-end",
        "40",
        "--warm-start",
        &ranks,
    ]))
    .unwrap();
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&ranks).ok();
}

#[test]
fn threaded_simulate_via_cli() {
    let graph = tmp("threaded.graph");
    commands::generate(&args(&["generate", "--pages", "1500", "--sites", "12", "--out", &graph]))
        .unwrap();
    commands::simulate(&args(&["simulate", &graph, "--k", "6", "--threaded"])).unwrap();
    std::fs::remove_file(&graph).ok();
}

#[test]
fn top_reads_saved_ranks() {
    let graph = tmp("top.graph");
    let ranks = tmp("top.ranks");
    commands::generate(&args(&["generate", "--pages", "800", "--sites", "8", "--out", &graph]))
        .unwrap();
    commands::simulate(&args(&[
        "simulate",
        &graph,
        "--k",
        "8",
        "--t-end",
        "60",
        "--save-ranks",
        &ranks,
    ]))
    .unwrap();
    commands::top(&args(&["top", &graph, "--ranks", &ranks, "--k", "5"])).unwrap();
    commands::top(&args(&["top", &graph, "--ranks", &ranks, "--site", "1"])).unwrap();
    // Mismatched rank file is a clean error.
    let small = tmp("small.graph");
    commands::generate(&args(&["generate", "--pages", "100", "--sites", "4", "--out", &small]))
        .unwrap();
    assert!(commands::top(&args(&["top", &small, "--ranks", &ranks]))
        .unwrap_err()
        .contains("entries"));
    std::fs::remove_file(&graph).ok();
    std::fs::remove_file(&ranks).ok();
    std::fs::remove_file(&small).ok();
}

#[test]
fn analyze_reports_structure() {
    let path = tmp("analyze.graph");
    commands::generate(&args(&["generate", "--pages", "1000", "--sites", "10", "--out", &path]))
        .unwrap();
    commands::analyze(&args(&["analyze", &path])).unwrap();
    commands::analyze(&args(&["analyze", &path, "--sinks-only"])).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_runs_with_defaults_and_overrides() {
    commands::plan(&args(&["plan"])).unwrap();
    commands::plan(&args(&["plan", "--rankers", "100000", "--pages", "3e10"])).unwrap();
}

#[test]
fn missing_file_is_a_clean_error() {
    let err = commands::stats(&args(&["stats", "/nonexistent/x.graph"])).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn bad_enums_are_clean_errors() {
    let path = tmp("enums.graph");
    commands::generate(&args(&["generate", "--pages", "500", "--sites", "5", "--out", &path]))
        .unwrap();
    assert!(commands::partition(&args(&["partition", &path, "--strategy", "zigzag"]))
        .unwrap_err()
        .contains("unknown strategy"));
    assert!(commands::rank(&args(&["rank", &path, "--algo", "eigentrust"]))
        .unwrap_err()
        .contains("unknown algo"));
    assert!(commands::simulate(&args(&["simulate", &path, "--variant", "dpr9"]))
        .unwrap_err()
        .contains("unknown variant"));
    assert!(commands::crawl(&args(&["crawl", "--mode", "psychic", "--out", "/tmp/x"]))
        .unwrap_err()
        .contains("unknown mode"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_requires_out() {
    assert!(commands::generate(&args(&["generate"])).unwrap_err().contains("--out"));
}

#[test]
fn net_simulate_with_faults_and_reliability() {
    let graph = tmp("net.graph");
    commands::generate(&args(&["generate", "--pages", "800", "--sites", "8", "--out", &graph]))
        .unwrap();
    // Plain whole-system run over the default Pastry overlay.
    commands::simulate(&args(&["simulate", &graph, "--net", "--k", "8", "--t-end", "120"]))
        .unwrap();
    // Lossy run with the reliability protocol and a crash + join schedule.
    commands::simulate(&args(&[
        "simulate",
        &graph,
        "--net",
        "--k",
        "8",
        "--t-end",
        "150",
        "--p",
        "0.7",
        "--reliable",
        "--ack-timeout",
        "0.5",
        "--max-retries",
        "4",
        "--crash",
        "40:2",
        "--join",
        "60:901",
    ]))
    .unwrap();
    // Partition window on a Chord deployment.
    commands::simulate(&args(&[
        "simulate",
        &graph,
        "--net",
        "--k",
        "8",
        "--overlay",
        "chord",
        "--t-end",
        "150",
        "--partition",
        "30:60:0-3",
    ]))
    .unwrap();
    std::fs::remove_file(&graph).ok();
}

#[test]
fn net_simulate_rejects_bad_specs() {
    let graph = tmp("net-bad.graph");
    commands::generate(&args(&["generate", "--pages", "400", "--sites", "4", "--out", &graph]))
        .unwrap();
    assert!(commands::simulate(&args(&["simulate", &graph, "--net", "--overlay", "kademlia"]))
        .unwrap_err()
        .contains("unknown overlay"));
    assert!(commands::simulate(&args(&["simulate", &graph, "--net", "--crash", "oops"]))
        .unwrap_err()
        .contains("--crash"));
    assert!(commands::simulate(&args(&["simulate", &graph, "--net", "--partition", "9:3:0-1"]))
        .unwrap_err()
        .contains("--partition"));
    assert!(commands::simulate(&args(&["simulate", &graph, "--p", "1.5"]))
        .unwrap_err()
        .contains("--p"));
    assert!(commands::simulate(&args(&["simulate", &graph, "--net", "--join", "5:9,3:8"]))
        .unwrap_err()
        .contains("strictly increasing"));
    // Churn on an overlay that cannot support it surfaces as an error, not
    // a panic.
    assert!(commands::simulate(&args(&[
        "simulate",
        &graph,
        "--net",
        "--overlay",
        "can",
        "--crash",
        "10:1",
    ]))
    .unwrap_err()
    .contains("not supported on the CAN overlay"));
    std::fs::remove_file(&graph).ok();
}
