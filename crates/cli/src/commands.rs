//! The `dpr` subcommand implementations.

use dpr_core::centralized::{open_pagerank, open_pagerank_accelerated, pagerank};
use dpr_core::hits::{hits, HitsConfig};
use dpr_core::metrics::top_k;
use dpr_core::{run_distributed, DistributedRunConfig, DprVariant, RankConfig};
use dpr_crawl::crawler::parallel_crawl;
use dpr_crawl::{crawl_to_graph, CrawlBudget, HiddenWeb, HiddenWebConfig, Mode};
use dpr_graph::generators::edu::{edu_domain, EduDomainConfig};
use dpr_graph::{GraphStats, WebGraph};
use dpr_model::{pastry_hops, CapacityModel};
use dpr_partition::{Partition, PartitionMetrics, Strategy};

use crate::args::Args;

/// Top-level usage text.
pub const HELP: &str = "\
dpr — distributed page ranking in structured P2P networks

USAGE: dpr <command> [args]

COMMANDS:
  generate  --pages N --sites S [--seed X] [--binary] --out FILE
            Synthesize an edu-domain crawl dataset. --binary streams the
            graph to the compact snapshot format without materializing
            the edge list (use it for 10M-page graphs); every command
            reads both formats transparently.
  crawl     --web-pages N --sites S [--agents A] [--mode firewall|crossover|exchange]
            [--budget B] --out FILE
            Crawl a synthetic hidden web with parallel agents.
  stats     FILE
            Print dataset statistics.
  partition FILE [--k K] [--strategy site|url|random]
            Evaluate a dividing strategy (cut links, balance, stability).
  rank      FILE [--algo cpr|pagerank|hits] [--accelerated] [--top T] [--alpha A]
            Centralized ranking baselines.
  simulate  FILE [--k K] [--variant dpr1|dpr2] [--p P] [--t1 T] [--t2 T]
            [--t-end T] [--strategy site|url|random] [--seed X]
            [--warm-start RANKS] [--save-ranks RANKS] [--threaded]
            Asynchronous distributed ranking with failure injection;
            rank files enable warm restarts across invocations;
            --threaded runs real OS threads instead of the simulator.
            Whole-system mode (rank exchange routed through the overlay):
            --net [--nodes N] [--overlay pastry|chord|can] [--can-dims D]
            [--transmission indirect|direct]
            [--reliable] [--ack-timeout T] [--max-retries R]
            [--crash T:NODE[,T:NODE...]] [--join T:SEED[,T:SEED...]]
            [--deltas T:CHURN[,T:CHURN...]] [--churn-rate R] [--churn-every T]
            [--partition T1:T2:LO-HI] [--no-coalesce] [--no-route-cache]
            [--heap-scheduler] [--no-ext-cache] [--engine-workers W]
            [--replicas K] [--checkpoint-every T] [--suspect-after N]
            [--store-topk K] [--explicit-matrix] [--unrolled-spmv]
            --reliable turns on ack/retry/dedup delivery; --crash departs
            nodes (state lost), --join adds nodes (graceful handoff),
            --partition severs nodes LO..=HI from the rest during [T1,T2);
            --deltas lands a crawl delta churning link fraction CHURN at
            each time T (dirtied groups warm-restart from the previous
            fixed point, everyone else stays converged); --churn-rate R
            instead churns fraction R every --churn-every time units —
            the continuous live-web scenario;
            --replicas K ships group checkpoints to K overlay replicas
            every --checkpoint-every T time units; a replica re-hosts a
            crashed owner's groups warm after N missed checkpoints
            (--suspect-after); 0 replicas = the exact baseline;
            --no-coalesce / --no-route-cache disable the fast message
            path (per-destination merging, memoized overlay lookups);
            --heap-scheduler / --no-ext-cache fall back to the legacy
            BinaryHeap event queue and full external-contribution
            rebuilds (bit-identical results, slower engine);
            --engine-workers W runs same-window node solves on W pool
            threads (default: all hardware threads; 1 = sequential;
            results are bit-identical at any W);
            --store-topk K publishes epoch-versioned rank snapshots into
            the concurrent serving store after every sample slice and
            prints the store-served top K (bit-identical to the live
            final ranks by construction);
            --explicit-matrix stores link-matrix values explicitly
            instead of the default bandwidth-lean implicit layout
            (both solve bit-identically); --unrolled-spmv opts in to
            the 4-wide unrolled gather kernel (different fp fold order,
            still deterministic at every worker count).
  top       FILE --ranks RANKS [--k K] [--site S]
            Top pages from a saved rank file (optionally one site only).
  analyze   FILE [--sinks-only]
            Structural audit: SCCs, rank sinks, reachability from site seeds.
  plan      [--rankers N] [--pages W] [--record-bytes L] [--bisection-mb C]
            Capacity planning (paper Table 1 math).
";

type CmdResult = Result<(), String>;

/// Loads a graph in either format, sniffing the binary snapshot magic.
fn load_graph(path: &str) -> Result<WebGraph, String> {
    use std::io::Read;
    let mut magic = [0u8; 6];
    let is_snapshot = std::fs::File::open(path)
        .map_err(|e| format!("cannot read graph {path}: {e}"))?
        .read_exact(&mut magic)
        .is_ok()
        && &magic == dpr_graph::io::SNAPSHOT_MAGIC;
    if is_snapshot {
        dpr_graph::io::load_snapshot(path).map_err(|e| format!("cannot read graph {path}: {e}"))
    } else {
        dpr_graph::io::load(path).map_err(|e| format!("cannot read graph {path}: {e}"))
    }
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "site" => Ok(Strategy::HashBySite),
        "url" => Ok(Strategy::HashByUrl),
        "random" => Ok(Strategy::Random { seed: 0xD1CE }),
        other => Err(format!("unknown strategy `{other}` (site|url|random)")),
    }
}

/// `dpr generate`
pub fn generate(args: &Args) -> CmdResult {
    let out = args.get_str("out", "");
    if out.is_empty() {
        return Err("generate needs --out FILE".into());
    }
    let cfg = EduDomainConfig {
        n_pages: args.get("pages", 50_000usize),
        n_sites: args.get("sites", 100usize),
        seed: args.get("seed", EduDomainConfig::default().seed),
        ..EduDomainConfig::default()
    };
    if args.flag("binary") {
        // Stream rows straight to the compact snapshot — the edge list is
        // never materialized in memory, so 10M-page graphs are fine.
        dpr_graph::generators::edu_domain_to_snapshot_path(&cfg, out)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("streamed {} pages to binary snapshot {out}", cfg.n_pages);
        return Ok(());
    }
    let g = edu_domain(&cfg);
    dpr_graph::io::save(&g, out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} pages / {} links to {out}", g.n_pages(), g.n_internal_links());
    Ok(())
}

/// `dpr crawl`
pub fn crawl(args: &Args) -> CmdResult {
    let out = args.get_str("out", "");
    if out.is_empty() {
        return Err("crawl needs --out FILE".into());
    }
    let web = HiddenWeb::new(HiddenWebConfig {
        total_pages: args.get("web-pages", 100_000u64),
        n_sites: args.get("sites", 100usize),
        seed: args.get("seed", HiddenWebConfig::default().seed),
        ..HiddenWebConfig::default()
    });
    let mode = match args.get_str("mode", "exchange") {
        "firewall" => Mode::Firewall,
        "crossover" => Mode::CrossOver,
        "exchange" => Mode::Exchange,
        other => return Err(format!("unknown mode `{other}`")),
    };
    let agents = args.get("agents", 4usize);
    let budget = CrawlBudget { max_pages: args.get("budget", usize::MAX) };
    let res = parallel_crawl(&web, agents, mode, budget);
    let g = crawl_to_graph(&web, &res.fetched);
    dpr_graph::io::save(&g, out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "crawled {} pages ({:.1}% of the web) with {agents} agents ({} URLs exchanged, {} overlap)",
        g.n_pages(),
        res.outcome.coverage * 100.0,
        res.outcome.urls_exchanged,
        res.outcome.overlap
    );
    println!("wrote {out}");
    Ok(())
}

/// `dpr stats`
pub fn stats(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    println!("{}", GraphStats::compute(&g));
    Ok(())
}

/// `dpr partition`
pub fn partition(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    let k = args.get("k", 64usize);
    let strategy = parse_strategy(args.get_str("strategy", "site"))?;
    let p = Partition::build(&g, &strategy, k, 0);
    let m = PartitionMetrics::compute(&g, &p);
    println!("strategy {} over K = {k} groups:", strategy.name());
    println!("{m}");
    println!("stable across re-crawls: {}", strategy.is_stable());
    Ok(())
}

/// `dpr rank`
pub fn rank(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    let top = args.get("top", 10usize);
    let cfg = RankConfig { alpha: args.get("alpha", 0.85f64), ..RankConfig::default() };
    let (name, ranks, iterations) = match args.get_str("algo", "cpr") {
        "cpr" => {
            let out = if args.flag("accelerated") {
                open_pagerank_accelerated(&g, &cfg)
            } else {
                open_pagerank(&g, &cfg)
            };
            ("open-system PageRank (CPR)", out.ranks, out.iterations)
        }
        "pagerank" => {
            let out = pagerank(&g, &cfg);
            ("closed-system PageRank (Algorithm 1)", out.ranks, out.iterations)
        }
        "hits" => {
            let out = hits(&g, &HitsConfig::default());
            ("HITS authorities", out.authorities, out.iterations)
        }
        other => return Err(format!("unknown algo `{other}` (cpr|pagerank|hits)")),
    };
    println!("{name}: converged in {iterations} iterations\n");
    for p in top_k(&ranks, top) {
        println!("{:>12.5}  {}", ranks[p as usize], g.url_of(p));
    }
    Ok(())
}

/// Parses a `T:V[,T:V...]` schedule (`--crash`, `--join`).
fn parse_schedule<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<(f64, T)>, String> {
    let entries: Vec<(f64, T)> = spec
        .split(',')
        .map(|entry| {
            let (t, v) = entry
                .split_once(':')
                .ok_or_else(|| format!("bad {what} entry `{entry}` (want T:VALUE)"))?;
            let t: f64 = t.parse().map_err(|_| format!("bad {what} time `{t}` in `{entry}`"))?;
            let v: T = v.parse().map_err(|_| format!("bad {what} value `{v}` in `{entry}`"))?;
            Ok((t, v))
        })
        .collect::<Result<_, String>>()?;
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err(format!("{what} times must be strictly increasing in `{spec}`"));
    }
    Ok(entries)
}

/// Parses `T1:T2:LO-HI` (`--partition`): window plus a node index range.
fn parse_partition(spec: &str) -> Result<(f64, f64, Vec<usize>), String> {
    let bad = || format!("bad --partition `{spec}` (want T1:T2:LO-HI)");
    let mut it = spec.splitn(3, ':');
    let t1: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let t2: f64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let range = it.next().ok_or_else(bad)?;
    let (lo, hi) = range.split_once('-').ok_or_else(bad)?;
    let lo: usize = lo.parse().map_err(|_| bad())?;
    let hi: usize = hi.parse().map_err(|_| bad())?;
    if t1 >= t2 || lo > hi {
        return Err(bad());
    }
    Ok((t1, t2, (lo..=hi).collect()))
}

/// The `--net` branch of `dpr simulate`: the whole-system simulator with
/// overlay routing, fault injection and optional reliable delivery.
fn simulate_net(args: &Args, g: &WebGraph, variant: DprVariant) -> CmdResult {
    use dpr_core::{NetRunConfig, OverlayKind, Reliability, Transmission};
    use dpr_sim::FaultPlan;

    let k = args.get("k", 64usize);
    let overlay = match args.get_str("overlay", "pastry") {
        "pastry" => OverlayKind::Pastry,
        "chord" => OverlayKind::Chord,
        "can" => OverlayKind::Can { d: args.get("can-dims", 2usize) },
        other => return Err(format!("unknown overlay `{other}` (pastry|chord|can)")),
    };
    let transmission = match args.get_str("transmission", "indirect") {
        "indirect" => Transmission::Indirect,
        "direct" => Transmission::Direct,
        other => return Err(format!("unknown transmission `{other}` (indirect|direct)")),
    };
    let reliability = if args.flag("reliable") {
        Some(Reliability {
            ack_timeout: args.get("ack-timeout", Reliability::default().ack_timeout),
            max_retries: args.get("max-retries", Reliability::default().max_retries),
            ..Reliability::default()
        })
    } else {
        None
    };
    let departures = match args.get_str("crash", "") {
        "" => Vec::new(),
        spec => parse_schedule::<usize>(spec, "--crash")?,
    };
    let joins = match args.get_str("join", "") {
        "" => Vec::new(),
        spec => parse_schedule::<u64>(spec, "--join")?,
    };
    let p = args.get("p", 1.0f64);
    let faults = match args.get_str("partition", "") {
        "" => None,
        spec => {
            let (t1, t2, side_a) = parse_partition(spec)?;
            Some(
                FaultPlan::new()
                    .with_latency(0.01)
                    .with_default_success(p)
                    .with_partition(t1, t2, &side_a),
            )
        }
    };
    let t_end = args.get("t-end", 200.0f64);
    let seed = args.get("seed", 0u64);
    // Crawl-delta schedule: explicit (`--deltas T:CHURN,...`) or periodic
    // (`--churn-rate R` every `--churn-every T`). Each entry churns the
    // given link fraction; deltas are materialized sequentially against
    // successive graph states, exactly as a continuous recrawl would
    // produce them.
    let mut delta_spec = match args.get_str("deltas", "") {
        "" => Vec::new(),
        spec => parse_schedule::<f64>(spec, "--deltas")?,
    };
    let churn_rate = args.get("churn-rate", 0.0f64);
    if churn_rate > 0.0 {
        if !delta_spec.is_empty() {
            return Err("--churn-rate and --deltas are mutually exclusive".into());
        }
        let every = args.get("churn-every", 50.0f64);
        if every <= 0.0 {
            return Err(format!("--churn-every must be positive, got {every}"));
        }
        let mut t = every;
        while t < t_end {
            delta_spec.push((t, churn_rate));
            t += every;
        }
    }
    let deltas = if delta_spec.is_empty() {
        Vec::new()
    } else {
        let mut live = g.clone();
        let mut out = Vec::with_capacity(delta_spec.len());
        for (i, &(t, frac)) in delta_spec.iter().enumerate() {
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("churn fraction must be in [0, 1], got {frac}"));
            }
            let d = dpr_graph::GraphDelta::link_churn(&live, frac, seed.wrapping_add(i as u64 + 1));
            live = d.apply(&live);
            out.push((t, d));
        }
        out
    };
    let n_deltas = deltas.len();
    let last_delta_at = deltas.last().map(|&(t, _)| t);
    let cfg = NetRunConfig {
        k,
        n_nodes: args.get("nodes", k),
        transmission,
        overlay,
        variant,
        strategy: parse_strategy(args.get_str("strategy", "site"))?,
        t1: args.get("t1", 0.5f64),
        t2: args.get("t2", 3.0f64),
        send_success_prob: p,
        seed,
        t_end,
        sample_every: args.get("sample-every", 2.0f64),
        departures,
        joins,
        deltas,
        reliability,
        faults,
        coalesce: !args.flag("no-coalesce"),
        route_cache: !args.flag("no-route-cache"),
        scheduler: if args.flag("heap-scheduler") {
            dpr_sim::SchedulerKind::BinaryHeap
        } else {
            dpr_sim::SchedulerKind::Slab
        },
        ext_cache: !args.flag("no-ext-cache"),
        replication: args.get("replicas", 0usize),
        checkpoint_every: args.get("checkpoint-every", NetRunConfig::default().checkpoint_every),
        suspect_after: args.get("suspect-after", NetRunConfig::default().suspect_after),
        engine_workers: args.get("engine-workers", dpr_linalg::pool::Pool::host_threads()),
        explicit_matrix: args.flag("explicit-matrix"),
        unrolled_spmv: args.flag("unrolled-spmv"),
        ..NetRunConfig::default()
    };
    let engine_workers = cfg.engine_workers;
    let store_topk = args.get("store-topk", 0usize);
    let store = (store_topk > 0).then(|| {
        let site_of: Vec<u32> = (0..g.n_pages() as u32).map(|p| g.site(p)).collect();
        dpr_core::RankStore::new(store_topk).with_sites(site_of, g.n_sites())
    });
    let res = dpr_core::netrun::try_run_over_network_with_store(g, cfg, store.as_ref())
        .map_err(|e| e.to_string())?;
    println!(
        "whole-system run: {k} groups on {} {overlay:?} nodes, {transmission:?} transmission",
        args.get("nodes", k)
    );
    println!(
        "network: {} data msgs, {} lookups, {:.1} MB on the wire, {:.2} mean route hops",
        res.counters.data_messages,
        res.counters.lookup_messages,
        res.counters.bytes as f64 / 1e6,
        res.mean_route_hops
    );
    println!(
        "message path: {} parts coalesced away, route cache {:.1}% hit rate ({} hits / {} misses, {} invalidations)",
        res.counters.coalesced_parts,
        res.route_cache.hit_rate() * 100.0,
        res.route_cache.hits,
        res.route_cache.misses,
        res.route_cache.invalidations
    );
    if res.counters.acks > 0 || res.counters.retries > 0 {
        println!(
            "reliability: {} acks, {} retries, {} duplicates suppressed, {} abandoned ({} updates gave up)",
            res.counters.acks,
            res.counters.retries,
            res.counters.duplicates_suppressed,
            res.counters.retry_exhausted,
            res.counters.gave_up
        );
    }
    if res.counters.checkpoints_sent > 0 || res.counters.takeovers_cold > 0 {
        println!(
            "replication: {} checkpoints ({:.1} MB), {} warm takeovers, {} cold takeovers",
            res.counters.checkpoints_sent,
            res.counters.checkpoint_bytes as f64 / 1e6,
            res.counters.takeovers_warm,
            res.counters.takeovers_cold
        );
    }
    let s = res.sim_stats;
    println!(
        "engine: {} sends, {} dropped ({} by partition, {} by crash), {} delivered",
        s.sends_attempted, s.sends_dropped, s.partition_dropped, s.crash_dropped, s.deliveries
    );
    if engine_workers > 1 {
        let b = res.sched_stats;
        println!(
            "parallel engine: {engine_workers} workers, {} batches (max {} wakes, {} singleton)",
            b.batches, b.max_batch, b.singleton_batches
        );
    }
    println!("final relative error {:.6}%", res.final_rel_err * 100.0);
    match res.rel_err.first_time_below(1e-3) {
        Some(t) => println!("reached 0.1% relative error at t = {t:.1}"),
        None => println!("did not reach 0.1% relative error within t = {t_end}"),
    }
    if n_deltas > 0 {
        println!(
            "crawl deltas: {n_deltas} applied, {} shipments, {:.1} KB on the wire",
            res.counters.delta_messages,
            res.counters.delta_bytes as f64 / 1e3
        );
        if let Some(t0) = last_delta_at {
            match res.rel_err.first_time_below_after(t0, 1e-3) {
                Some(t) => println!(
                    "warm re-convergence: back under 0.1% at t = {t:.1} ({:.1} after the last delta)",
                    t - t0
                ),
                None => println!("did not re-converge after the last delta within t = {t_end}"),
            }
        }
    }
    if let Some(store) = &store {
        let v = store.view();
        let stats = store.stats();
        let hits = v.top_k(store_topk);
        let identical = hits.len() == store_topk.min(g.n_pages())
            && hits.iter().all(|h| h.rank.to_bits() == res.final_ranks[h.page as usize].to_bits());
        println!(
            "store: view v{} after {} publishes ({} group snapshots accepted, {} skipped as unchanged)",
            v.version(),
            stats.publishes,
            stats.group_updates,
            stats.skipped_updates
        );
        println!("store top ranks bit-identical to live final ranks: {identical}");
        for h in hits.iter().take(store_topk.min(5)) {
            println!("{:>12.5}  {}", h.rank, g.url_of(h.page));
        }
    }
    Ok(())
}

/// `dpr simulate`
pub fn simulate(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    let variant = match args.get_str("variant", "dpr1") {
        "dpr1" => DprVariant::Dpr1,
        "dpr2" => DprVariant::Dpr2,
        other => return Err(format!("unknown variant `{other}` (dpr1|dpr2)")),
    };
    let p = args.get("p", 1.0f64);
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("--p must be a probability in [0, 1], got {p}"));
    }
    if args.flag("net") {
        return simulate_net(args, &g, variant);
    }
    if args.flag("threaded") {
        let res = dpr_core::run_threaded(
            &g,
            &dpr_core::ThreadedRunConfig {
                k: args.get("k", 100usize),
                strategy: parse_strategy(args.get_str("strategy", "site"))?,
                variant,
                ..dpr_core::ThreadedRunConfig::default()
            },
        );
        println!(
            "threaded run: {} rounds, {} messages, final relative error {:.6}%",
            res.rounds,
            res.messages,
            res.final_rel_err * 100.0
        );
        if let Some(path) = args.options.get("save-ranks") {
            dpr_core::ranks_io::save(&res.final_ranks, path)
                .map_err(|e| format!("cannot write ranks to {path}: {e}"))?;
            println!("saved converged ranks to {path}");
        }
        return Ok(());
    }
    let warm_start = match args.get_str("warm-start", "") {
        "" => None,
        path => {
            let mut ranks = dpr_core::ranks_io::load(path)?;
            ranks.resize(g.n_pages(), 0.0);
            Some(ranks)
        }
    };
    let cfg = DistributedRunConfig {
        k: args.get("k", 100usize),
        variant,
        strategy: parse_strategy(args.get_str("strategy", "site"))?,
        t1: args.get("t1", 0.0f64),
        t2: args.get("t2", 6.0f64),
        send_success_prob: p,
        seed: args.get("seed", 0u64),
        t_end: args.get("t-end", 100.0f64),
        sample_every: args.get("sample-every", 1.0f64),
        warm_start,
        ..DistributedRunConfig::default()
    };
    let res = run_distributed(&g, cfg);
    if let Some(path) = args.options.get("save-ranks") {
        dpr_core::ranks_io::save(&res.final_ranks, path)
            .map_err(|e| format!("cannot write ranks to {path}: {e}"))?;
        println!("saved converged ranks to {path}");
    }
    println!(
        "K = {} rankers ({} active), variant {variant:?}",
        args.get("k", 100usize),
        res.active_groups
    );
    println!(
        "messages: {} sent, {} dropped, {} delivered",
        res.sim_stats.sends_attempted, res.sim_stats.sends_dropped, res.sim_stats.deliveries
    );
    match res.time_at_threshold {
        Some(t) => println!(
            "reached 0.01% relative error at t = {t:.1} ({:.1} mean outer iterations)",
            res.mean_outer_iters_at_threshold.unwrap_or(f64::NAN)
        ),
        None => println!(
            "did not reach 0.01% relative error within t = {}",
            args.get("t-end", 100.0f64)
        ),
    }
    println!(
        "final relative error {:.6}%, average rank {:.4}",
        res.final_rel_err * 100.0,
        res.avg_rank.last_value().unwrap_or(f64::NAN)
    );
    Ok(())
}

/// `dpr top`
pub fn top(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    let ranks_path = args.get_str("ranks", "");
    if ranks_path.is_empty() {
        return Err("top needs --ranks FILE (from `simulate --save-ranks`)".into());
    }
    let ranks = dpr_core::ranks_io::load(ranks_path)?;
    if ranks.len() != g.n_pages() {
        return Err(format!(
            "rank file has {} entries but the graph has {} pages",
            ranks.len(),
            g.n_pages()
        ));
    }
    let k = args.get("k", 10usize);
    let site_filter: Option<u32> = args.options.get("site").and_then(|v| v.parse().ok());
    let candidates: Option<Vec<u32>> =
        site_filter.map(|s| (0..g.n_pages() as u32).filter(|&p| g.site(p) == s).collect());
    let order = match &candidates {
        None => top_k(&ranks, k),
        Some(c) => {
            let mut idx = c.clone();
            idx.sort_unstable_by(|&a, &b| {
                ranks[b as usize].total_cmp(&ranks[a as usize]).then(a.cmp(&b))
            });
            idx.truncate(k);
            idx
        }
    };
    let summary = dpr_core::metrics::RankSummary::compute(&ranks);
    println!(
        "{} pages; mean rank {:.4}, gini {:.3}, p99 {:.4}\n",
        summary.n, summary.mean, summary.gini, summary.p99
    );
    for p in order {
        println!("{:>12.5}  {}", ranks[p as usize], g.url_of(p));
    }
    Ok(())
}

/// `dpr analyze`
pub fn analyze(args: &Args) -> CmdResult {
    let g = load_graph(args.positional(0, "graph")?)?;
    let sccs = dpr_graph::analysis::tarjan_scc(&g);
    let sinks = dpr_graph::analysis::rank_sinks(&g, false);
    let closed: Vec<_> = sinks.iter().filter(|s| s.closed).collect();
    println!("pages:                {}", g.n_pages());
    println!("strongly connected components: {}", sccs.n_components);
    println!("rank sinks (no escaping links): {}", sinks.len());
    println!("  of which closed (no external links either): {}", closed.len());
    if let Some(biggest) = closed.iter().max_by_key(|s| s.pages.len()) {
        println!(
            "  largest closed sink: {} pages, e.g. {}",
            biggest.pages.len(),
            g.url_of(biggest.pages[0])
        );
    }
    if !args.flag("sinks-only") {
        // Reachability from each site's first page (crawler seeds).
        let seeds: Vec<u32> = {
            let mut first = vec![None; g.n_sites()];
            for p in 0..g.n_pages() as u32 {
                let s = g.site(p) as usize;
                if first[s].is_none() {
                    first[s] = Some(p);
                }
            }
            first.into_iter().flatten().collect()
        };
        let reach = dpr_graph::analysis::reachable_from(&g, &seeds);
        let n_reach = reach.iter().filter(|&&r| r).count();
        println!(
            "reachable from site seeds: {} / {} pages ({:.1}%)",
            n_reach,
            g.n_pages(),
            100.0 * n_reach as f64 / g.n_pages().max(1) as f64
        );
    }
    println!(
        "
(Closed sinks are what §2's rank-sink term is about: without the βE virtual links \
         they swallow all rank; the open-system formulation is immune.)"
    );
    Ok(())
}

/// `dpr plan`
pub fn plan(args: &Args) -> CmdResult {
    let model = CapacityModel {
        total_pages: args.get("pages", 3.0e9),
        link_record_bytes: args.get("record-bytes", 100.0),
        usable_bisection_bytes_per_sec: args.get("bisection-mb", 100.0) * 1e6,
    };
    let n = args.get("rankers", 1_000u64);
    let row = model.row(n);
    println!(
        "ranking {:.2e} pages over {n} rankers (h ≈ {:.2} Pastry hops):",
        model.total_pages,
        pastry_hops(n)
    );
    println!("  bytes per iteration:        {:.1} GB", model.bytes_per_iteration(row.hops) / 1e9);
    println!(
        "  minimal iteration interval: {:.0} s ({:.1} h)",
        row.min_iteration_interval_secs,
        row.min_iteration_interval_secs / 3600.0
    );
    println!("  per-node bottleneck needed: {:.1} KB/s", row.min_bottleneck_bytes_per_sec / 1e3);
    Ok(())
}
