//! `dpr` — the distributed page ranking toolkit, on the command line.
//!
//! ```text
//! dpr generate --pages 50000 --sites 100 --out crawl.graph
//! dpr crawl    --web-pages 100000 --agents 8 --mode exchange --out crawl.graph
//! dpr stats    crawl.graph
//! dpr partition crawl.graph --k 64 --strategy site
//! dpr rank     crawl.graph --top 10 [--algo cpr|pagerank|hits] [--accelerated]
//! dpr simulate crawl.graph --k 100 --variant dpr1 --p 0.7 --t2 6 --t-end 100
//! dpr plan     --rankers 1000 --pages 3e9
//! ```
//!
//! Every subcommand is a thin veneer over the library crates; anything the
//! CLI does is one function call away for programmatic users.

use dpr_cli::args::Args;
use dpr_cli::commands;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "crawl" => commands::crawl(&args),
        "stats" => commands::stats(&args),
        "partition" => commands::partition(&args),
        "rank" => commands::rank(&args),
        "simulate" => commands::simulate(&args),
        "top" => commands::top(&args),
        "analyze" => commands::analyze(&args),
        "plan" => commands::plan(&args),
        "" | "help" | "--help" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", commands::HELP)),
    };
    if let Err(e) = result {
        eprintln!("dpr: {e}");
        std::process::exit(1);
    }
}
