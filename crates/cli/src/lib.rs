//! Library backing the `dpr` command-line binary; exposed so the
//! subcommands are directly testable (and reusable by other front-ends).

#![warn(missing_docs)]

pub mod args;
pub mod commands;
