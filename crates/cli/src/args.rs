//! Minimal argument parsing for the `dpr` CLI: a subcommand followed by
//! `--key value` options and positional arguments. No external parser
//! dependency — the surface is small and the error messages are ours.

use std::collections::HashMap;

/// Parsed command line: subcommand, positionals, options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` and bare `--flag` (value `"true"`).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses an iterator of raw arguments (without the binary name).
    #[must_use]
    pub fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match raw.peek() {
                    Some(v) if !v.starts_with("--") => raw.next().unwrap(),
                    _ => "true".to_string(),
                };
                out.options.insert(key.to_string(), value);
            } else if out.command.is_empty() {
                out.command = a;
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Typed option lookup with a default.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.options.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// String option lookup.
    #[must_use]
    pub fn get_str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map_or(default, String::as_str)
    }

    /// Whether a bare flag was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// The `i`-th positional argument, or an error message naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required argument <{name}>"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(ToString::to_string))
    }

    #[test]
    fn command_positional_options() {
        let a = parse(&["rank", "graph.txt", "--top", "5", "--accelerated"]);
        assert_eq!(a.command, "rank");
        assert_eq!(a.positional(0, "graph").unwrap(), "graph.txt");
        assert_eq!(a.get("top", 0usize), 5);
        assert!(a.flag("accelerated"));
        assert!(!a.flag("absent"));
    }

    #[test]
    fn missing_positional_reports_name() {
        let a = parse(&["stats"]);
        let err = a.positional(0, "graph").unwrap_err();
        assert!(err.contains("<graph>"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["plan"]);
        assert_eq!(a.get("rankers", 1000u64), 1000);
        assert_eq!(a.get_str("strategy", "site"), "site");
    }

    #[test]
    fn empty_input() {
        let a = parse(&[]);
        assert!(a.command.is_empty());
    }
}
