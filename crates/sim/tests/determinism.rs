//! Property tests for the discrete-event engine: determinism per seed,
//! event-ordering guarantees, and failure-injection statistics — the
//! foundations every experiment's reproducibility rests on.

use dpr_sim::{Actor, Ctx, SimConfig, Simulation};
use proptest::prelude::*;
use rand::Rng;

/// An actor that behaves pseudo-randomly (via the engine RNG): sends to
/// random peers, schedules random wakes, and logs everything it sees.
struct Chaos {
    n: usize,
    rounds: u32,
    log: Vec<(u64, usize)>, // (message payload, from)
    sent: u64,
}

impl Actor for Chaos {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let delay = ctx.rng().gen_range(0.0..1.0);
        ctx.schedule_wake(delay);
    }
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let fanout = ctx.rng().gen_range(1..4usize);
        for _ in 0..fanout {
            let dst = ctx.rng().gen_range(0..self.n);
            let payload = ctx.rng().gen::<u64>();
            if ctx.send(dst, payload) {
                self.sent += 1;
            }
        }
        let delay = ctx.rng().gen_range(0.1..2.0);
        ctx.schedule_wake(delay);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, from: usize, msg: u64) {
        self.log.push((msg, from));
    }
}

fn run(n: usize, rounds: u32, cfg: SimConfig) -> (Vec<Vec<(u64, usize)>>, dpr_sim::SimStats) {
    let actors = (0..n).map(|_| Chaos { n, rounds, log: vec![], sent: 0 }).collect();
    let mut sim = Simulation::new(actors, cfg);
    while sim.step() {}
    let stats = sim.stats();
    (sim.into_actors().into_iter().map(|a| a.log).collect(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Bit-identical logs for identical seeds, across chaotic behaviors.
    #[test]
    fn identical_seeds_identical_histories(
        n in 2usize..12,
        rounds in 1u32..8,
        p in 0.1f64..=1.0,
        seed in any::<u64>(),
        latency in 0.0f64..0.5,
    ) {
        let cfg = SimConfig { send_success_prob: p, latency, seed };
        let (log_a, stats_a) = run(n, rounds, cfg);
        let (log_b, stats_b) = run(n, rounds, cfg);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Different seeds diverge (with overwhelming probability given random
    /// payloads) — i.e. the seed actually feeds the behavior.
    #[test]
    fn different_seeds_diverge(n in 3usize..8, seed in any::<u64>()) {
        let cfg1 = SimConfig { seed, ..SimConfig::default() };
        let cfg2 = SimConfig { seed: seed.wrapping_add(1), ..SimConfig::default() };
        let (a, _) = run(n, 4, cfg1);
        let (b, _) = run(n, 4, cfg2);
        prop_assert_ne!(a, b);
    }

    /// Engine accounting balances: deliveries + drops = attempts, and the
    /// sum of per-actor logs equals deliveries.
    #[test]
    fn message_accounting_balances(
        n in 2usize..10,
        rounds in 1u32..6,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig { send_success_prob: p, latency: 0.01, seed };
        let (logs, stats) = run(n, rounds, cfg);
        prop_assert_eq!(stats.deliveries + stats.sends_dropped, stats.sends_attempted);
        let received: u64 = logs.iter().map(|l| l.len() as u64).sum();
        prop_assert_eq!(received, stats.deliveries);
        if p == 0.0 {
            prop_assert_eq!(stats.deliveries, 0);
        }
        if p == 1.0 {
            prop_assert_eq!(stats.sends_dropped, 0);
        }
    }

    /// Empirical drop rate tracks 1 − p (law of large numbers at the scale
    /// of a few hundred sends).
    #[test]
    fn drop_rate_tracks_probability(p in 0.2f64..0.8, seed in any::<u64>()) {
        let cfg = SimConfig { send_success_prob: p, latency: 0.01, seed };
        let (_, stats) = run(10, 20, cfg);
        prop_assume!(stats.sends_attempted > 300);
        let rate = stats.sends_dropped as f64 / stats.sends_attempted as f64;
        prop_assert!((rate - (1.0 - p)).abs() < 0.12, "rate {rate} vs 1-p {}", 1.0 - p);
    }
}
