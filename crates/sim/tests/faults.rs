//! Property tests for the fault-injection layer: a `(seed, FaultPlan)`
//! pair must replay bit-identically no matter which faults are composed,
//! the engine's drop accounting must balance under every plan, and
//! reliable sends must bypass loss, partitions and crashes.

use dpr_sim::{Actor, Ctx, FaultPlan, Jitter, Simulation};
use proptest::prelude::*;
use rand::Rng;

/// An actor that behaves pseudo-randomly (via the engine RNG): sends to
/// random peers, schedules random wakes, and logs everything it sees.
struct Chaos {
    n: usize,
    rounds: u32,
    reliable: bool,
    log: Vec<(u64, usize)>, // (message payload, from)
}

impl Actor for Chaos {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let delay = ctx.rng().gen_range(0.0..1.0);
        ctx.schedule_wake(delay);
    }
    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let fanout = ctx.rng().gen_range(1..4usize);
        for _ in 0..fanout {
            let dst = ctx.rng().gen_range(0..self.n);
            let payload = ctx.rng().gen::<u64>();
            if self.reliable {
                ctx.send_reliable(dst, payload);
            } else {
                ctx.send(dst, payload);
            }
        }
        let delay = ctx.rng().gen_range(0.1..2.0);
        ctx.schedule_wake(delay);
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, from: usize, msg: u64) {
        self.log.push((msg, from));
    }
}

fn run(
    n: usize,
    rounds: u32,
    reliable: bool,
    seed: u64,
    plan: FaultPlan,
) -> (Vec<Vec<(u64, usize)>>, dpr_sim::SimStats) {
    let actors = (0..n).map(|_| Chaos { n, rounds, reliable, log: vec![] }).collect();
    let mut sim = Simulation::with_plan(actors, seed, plan);
    while sim.step() {}
    let stats = sim.stats();
    (sim.into_actors().into_iter().map(|a| a.log).collect(), stats)
}

/// Optional fault components, sampled independently so tests can tell
/// which classes of fault were present in a given case.
type PartitionSpec = Option<(f64, f64, Vec<usize>)>;
type StragglerSpec = Option<(usize, f64, f64)>;
type CrashSpec = Option<(usize, f64, f64)>;

fn arb_jitter() -> impl Strategy<Value = Jitter> {
    prop_oneof![
        Just(Jitter::None),
        (0.01f64..0.2).prop_map(|max| Jitter::Uniform { max }),
        (0.01f64..0.1).prop_map(|mean| Jitter::Exponential { mean }),
    ]
}

fn arb_partition(n: usize) -> impl Strategy<Value = PartitionSpec> {
    proptest::option::of((0.0f64..4.0, 4.0f64..12.0, prop::collection::vec(0..n, 1..n.max(2))))
}

fn arb_straggler(n: usize) -> impl Strategy<Value = StragglerSpec> {
    proptest::option::of((0..n, 1.0f64..4.0, 1.0f64..4.0))
}

fn arb_crash(n: usize) -> impl Strategy<Value = CrashSpec> {
    proptest::option::of((0..n, 0.0f64..4.0, 4.0f64..12.0))
}

fn build_plan(
    p: f64,
    latency: f64,
    jitter: Jitter,
    partition: &PartitionSpec,
    straggler: &StragglerSpec,
    crash: &CrashSpec,
) -> FaultPlan {
    let mut plan =
        FaultPlan::new().with_latency(latency).with_default_success(p).with_jitter(jitter);
    if let Some((start, end, side)) = partition {
        plan = plan.with_partition(*start, *end, side);
    }
    if let Some((node, lf, tf)) = straggler {
        plan = plan.with_straggler(*node, *lf, *tf);
    }
    if let Some((node, start, end)) = crash {
        plan = plan.with_crash(*node, *start, *end);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Bit-identical logs and stats for identical `(seed, plan)` pairs,
    /// across arbitrary compositions of loss, jitter, partitions,
    /// stragglers and crash windows.
    #[test]
    fn identical_plans_replay_identically(
        n in 2usize..10,
        rounds in 1u32..8,
        p in 0.1f64..=1.0,
        latency in 0.0f64..0.3,
        jitter in arb_jitter(),
        partition in arb_partition(10),
        straggler in arb_straggler(10),
        crash in arb_crash(10),
        seed in any::<u64>(),
    ) {
        let plan = build_plan(p, latency, jitter, &partition, &straggler, &crash);
        let (log_a, stats_a) = run(n, rounds, false, seed, plan.clone());
        let (log_b, stats_b) = run(n, rounds, false, seed, plan);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// The engine's accounting invariant holds under every plan:
    /// deliveries + drops = attempts, the deterministic sub-counters never
    /// exceed the total drops, and fault classes that were not configured
    /// contribute zero drops.
    #[test]
    fn drop_accounting_balances_under_any_plan(
        n in 2usize..10,
        rounds in 1u32..6,
        p in 0.0f64..=1.0,
        jitter in arb_jitter(),
        partition in arb_partition(10),
        crash in arb_crash(10),
        seed in any::<u64>(),
    ) {
        let plan = build_plan(p, 0.01, jitter, &partition, &None, &crash);
        let (logs, stats) = run(n, rounds, false, seed, plan);
        prop_assert_eq!(stats.deliveries + stats.sends_dropped, stats.sends_attempted);
        prop_assert!(stats.partition_dropped + stats.crash_dropped <= stats.sends_dropped);
        let received: u64 = logs.iter().map(|l| l.len() as u64).sum();
        prop_assert_eq!(received, stats.deliveries);
        if partition.is_none() {
            prop_assert_eq!(stats.partition_dropped, 0);
        }
        if crash.is_none() {
            prop_assert_eq!(stats.crash_dropped, 0);
        }
        if p == 1.0 && partition.is_none() && crash.is_none() {
            prop_assert_eq!(stats.sends_dropped, 0);
        }
    }

    /// `send_reliable` bypasses loss, partitions and crashes: every
    /// attempted send is delivered, whatever the plan throws at it.
    #[test]
    fn reliable_sends_bypass_every_fault(
        n in 2usize..8,
        rounds in 1u32..6,
        p in 0.0f64..=1.0,
        partition in arb_partition(8),
        crash in arb_crash(8),
        seed in any::<u64>(),
    ) {
        let plan = build_plan(p, 0.01, Jitter::None, &partition, &None, &crash);
        let (logs, stats) = run(n, rounds, true, seed, plan);
        prop_assert_eq!(stats.sends_dropped, 0);
        prop_assert_eq!(stats.deliveries, stats.sends_attempted);
        let received: u64 = logs.iter().map(|l| l.len() as u64).sum();
        prop_assert_eq!(received, stats.deliveries);
    }
}
