//! The batched engine's replay contract: `run_until_pooled` must be
//! bit-identical to the sequential `run_until` at any worker count — same
//! deliveries, same RNG consumption, same counters, same actor state —
//! while actually running `think` slices concurrently. Also covers the
//! failure path: a panicking think inside a multi-actor batch surfaces
//! exactly once and leaves the pool reusable.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dpr_linalg::pool::Pool;
use dpr_sim::{Actor, Ctx, FaultPlan, Jitter, Simulation};
use rand::Rng;

/// A toy ranker with a real compute slice: `think` runs a deterministic
/// float iteration over the actor's own accumulator (no RNG, no context),
/// and `on_wake` then publishes the result to a random peer. The
/// `think_armed` flag pins the engine contract that `think` runs exactly
/// once immediately before every `on_wake`.
struct Cruncher {
    n: usize,
    rounds: u32,
    acc: f64,
    think_armed: bool,
    thinks: u64,
    /// Deterministically schedule a zero-delay follow-up wake on some
    /// rounds — an "interloper" that lands inside a later batch window.
    zero_delay_every: u32,
    log: Vec<(usize, u64)>,
}

impl Cruncher {
    fn fleet(n: usize, rounds: u32, zero_delay_every: u32) -> Vec<Self> {
        (0..n)
            .map(|_| Cruncher {
                n,
                rounds,
                acc: 0.5,
                think_armed: false,
                thinks: 0,
                zero_delay_every,
                log: vec![],
            })
            .collect()
    }
}

impl Actor for Cruncher {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let delay = ctx.rng().gen_range(0.0..0.3);
        ctx.schedule_wake(delay);
    }

    fn think(&mut self, now: f64) {
        assert!(!self.think_armed, "think ran twice before one on_wake");
        let mut x = self.acc + now.fract();
        for _ in 0..32 {
            x = (x.mul_add(0.85, 0.15)).sqrt();
        }
        self.acc = x;
        self.think_armed = true;
        self.thinks += 1;
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        assert!(self.think_armed, "on_wake fired without a preceding think");
        self.think_armed = false;
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let dst = ctx.rng().gen_range(0..self.n);
        ctx.send(dst, self.acc.to_bits());
        if self.zero_delay_every > 0 && self.rounds.is_multiple_of(self.zero_delay_every) {
            ctx.schedule_wake(0.0);
        } else {
            let delay = ctx.rng().gen_range(0.0..0.4);
            ctx.schedule_wake(delay);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, from: usize, msg: u64) {
        self.log.push((from, msg));
        self.acc = (self.acc + f64::from_bits(msg)) * 0.5;
    }
}

type Fingerprint = (Vec<(u64, u64, Vec<(usize, u64)>)>, dpr_sim::SimStats, u64);

fn fingerprint(sim: Simulation<Cruncher>) -> Fingerprint {
    let stats = sim.stats();
    let now_bits = sim.now().to_bits();
    let actors =
        sim.into_actors().into_iter().map(|a| (a.acc.to_bits(), a.thinks, a.log)).collect();
    (actors, stats, now_bits)
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::new()
        .with_latency(0.05)
        .with_default_success(0.8)
        .with_jitter(Jitter::Uniform { max: 0.02 })
        .with_straggler(3, 2.0, 1.5)
}

fn run_sequential(zero_delay_every: u32) -> Fingerprint {
    let mut sim =
        Simulation::with_plan(Cruncher::fleet(16, 12, zero_delay_every), 42, lossy_plan());
    sim.run_until(50.0);
    fingerprint(sim)
}

fn run_pooled(workers: usize, zero_delay_every: u32) -> Fingerprint {
    let pool = Pool::with_workers(workers);
    let mut sim =
        Simulation::with_plan(Cruncher::fleet(16, 12, zero_delay_every), 42, lossy_plan());
    sim.run_until_pooled(50.0, &pool);
    fingerprint(sim)
}

#[test]
fn batched_run_is_bit_identical_to_sequential() {
    let reference = run_sequential(0);
    for workers in [1, 2, 4, 8] {
        assert_eq!(run_pooled(workers, 0), reference, "divergence at {workers} workers");
    }
}

#[test]
fn zero_delay_interloper_wakes_replay_in_order() {
    // Committed on_wakes schedule zero-delay self-wakes that sort between
    // remaining batch members; the commit loop must interleave them at
    // exactly their sequential position.
    let reference = run_sequential(3);
    for workers in [1, 2, 4] {
        assert_eq!(run_pooled(workers, 3), reference, "divergence at {workers} workers");
    }
}

#[test]
fn batching_actually_extracts_multi_wake_batches() {
    let pool = Pool::with_workers(2);
    let mut sim = Simulation::with_plan(Cruncher::fleet(16, 12, 0), 42, lossy_plan());
    sim.run_until_pooled(50.0, &pool);
    let sched = sim.sched_stats();
    assert!(sched.batches > 0, "no batches recorded");
    assert!(sched.max_batch >= 2, "no multi-wake batch ever formed (max {})", sched.max_batch);
    assert!(sched.singleton_batches < sched.batches);
    // The sequential path records none — the counters expose the batched
    // engine only.
    let mut seq = Simulation::with_plan(Cruncher::fleet(16, 12, 0), 42, lossy_plan());
    seq.run_until(50.0);
    assert_eq!(seq.sched_stats().batches, 0);
}

#[test]
fn think_runs_exactly_once_per_wake() {
    let pool = Pool::with_workers(4);
    let mut sim = Simulation::with_plan(Cruncher::fleet(8, 10, 2), 7, lossy_plan());
    sim.run_until_pooled(100.0, &pool);
    let stats = sim.stats();
    let thinks: u64 = sim.actors().iter().map(|a| a.thinks).sum();
    assert_eq!(thinks, stats.wakes, "one think per wake, no more, no fewer");
}

/// Panics in `think` for one designated actor; everyone wakes at the same
/// virtual time so the batch is heterogeneous (healthy + poisoned tasks).
struct Poisoned {
    me_is_bad: bool,
}

impl Actor for Poisoned {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.schedule_wake(1.0);
    }
    fn think(&mut self, _now: f64) {
        assert!(!self.me_is_bad, "solve diverged on the poisoned actor");
    }
    fn on_wake(&mut self, _ctx: &mut Ctx<'_, ()>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: usize, _msg: ()) {}
}

#[test]
fn panicking_think_in_a_batch_surfaces_once_and_pool_survives() {
    let pool = Pool::with_workers(2);
    let actors = (0..8).map(|i| Poisoned { me_is_bad: i == 5 }).collect();
    let mut sim = Simulation::with_plan(actors, 0, FaultPlan::new().with_latency(0.5));
    let result = catch_unwind(AssertUnwindSafe(|| sim.run_until_pooled(2.0, &pool)));
    let payload = result.expect_err("the poisoned think must propagate");
    let msg = payload.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        payload.downcast_ref::<&str>().map(|s| (*s).to_string()).expect("string payload")
    });
    assert!(msg.contains("solve diverged"), "lost the original panic message: {msg}");

    // No deadlocked latch, no poisoned reuse: the same pool drives a fresh
    // healthy simulation to completion.
    let healthy = (0..8).map(|_| Poisoned { me_is_bad: false }).collect();
    let mut sim2 = Simulation::with_plan(healthy, 0, FaultPlan::new().with_latency(0.5));
    sim2.run_until_pooled(2.0, &pool);
    assert_eq!(sim2.stats().wakes, 8);
}
