//! Event-ordering golden test: the slab-backed scheduler must be
//! observationally identical to the legacy `BinaryHeap` — same `SimStats`,
//! same delivery trace (time, source, payload per actor), same wake trace,
//! same final virtual time — on a mixed wake/send/fault workload that
//! exercises equal-time FIFO ties, random loss, jitter, partitions, crash
//! windows and stragglers.

use dpr_sim::{Actor, Ctx, FaultPlan, Jitter, SchedulerKind, SimStats, Simulation};
use rand::Rng;

/// An actor that wakes on a randomized period, fans messages out to a few
/// peers (sometimes several to one peer in the same instant, so equal-time
/// FIFO ordering matters), and records everything it observes.
struct Chatter {
    n: usize,
    counter: u64,
    /// (now, from, payload) for every delivery.
    deliveries: Vec<(f64, usize, u64)>,
    /// now at every wake.
    wakes: Vec<f64>,
}

impl Actor for Chatter {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        // Stagger starts off the RNG so the first events already contend.
        let d: f64 = ctx.rng().gen::<f64>() * 0.5;
        ctx.schedule_wake(d);
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
        self.wakes.push(ctx.now());
        let fanout = 1 + (ctx.rng().gen::<u64>() % 3) as usize;
        for _ in 0..fanout {
            let dst = (ctx.rng().gen::<u64>() as usize) % self.n;
            let payload = self.counter;
            self.counter += 1;
            // A zero-latency burst to one destination from time to time:
            // ordering among equal times must be FIFO.
            if payload.is_multiple_of(7) {
                ctx.send(dst, payload);
                ctx.send(dst, payload + 1_000_000);
            } else if payload.is_multiple_of(5) {
                ctx.send_after(dst, 0.25, payload);
            } else if payload.is_multiple_of(11) {
                ctx.send_reliable(dst, payload);
            } else {
                ctx.send(dst, payload);
            }
        }
        let d: f64 = 0.1 + ctx.rng().gen::<f64>();
        ctx.schedule_wake(d);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: usize, msg: u64) {
        self.deliveries.push((ctx.now(), from, msg));
        // Occasionally reply immediately — message handlers also enqueue.
        if msg.is_multiple_of(13) {
            ctx.send(from, msg + 2_000_000);
        }
    }
}

fn mixed_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_latency(0.05)
        .with_default_success(0.8)
        .with_jitter(Jitter::Uniform { max: 0.02 })
        .with_partition(10.0, 18.0, &[0, 1, 2])
        .with_crash(5, 25.0, 32.0)
        .with_straggler(3, 1.5, 2.5)
        .with_link_success(4, 6, 0.3)
}

type Trace = (SimStats, f64, Vec<Vec<(f64, usize, u64)>>, Vec<Vec<f64>>);

fn run(kind: SchedulerKind, seed: u64) -> Trace {
    let n = 12;
    let actors: Vec<Chatter> = (0..n)
        .map(|_| Chatter { n, counter: 0, deliveries: Vec::new(), wakes: Vec::new() })
        .collect();
    let mut sim = Simulation::with_plan_scheduler(actors, seed, mixed_fault_plan(), kind);
    sim.run_until(50.0);
    let deliveries = sim.actors().iter().map(|a| a.deliveries.clone()).collect();
    let wakes = sim.actors().iter().map(|a| a.wakes.clone()).collect();
    (sim.stats(), sim.now(), deliveries, wakes)
}

#[test]
fn slab_and_heap_schedulers_are_observationally_identical() {
    for seed in [0, 1, 0xDEAD_BEEF] {
        let slab = run(SchedulerKind::Slab, seed);
        let heap = run(SchedulerKind::BinaryHeap, seed);
        assert_eq!(slab.0, heap.0, "SimStats diverged at seed {seed}");
        assert_eq!(slab.1, heap.1, "final time diverged at seed {seed}");
        assert_eq!(slab.2, heap.2, "delivery traces diverged at seed {seed}");
        assert_eq!(slab.3, heap.3, "wake traces diverged at seed {seed}");
        // The workload must actually have exercised the interesting paths.
        assert!(slab.0.deliveries > 100, "workload too small to be a golden test");
        assert!(slab.0.sends_dropped > 0, "loss never fired");
        assert!(slab.0.partition_dropped > 0, "partition never fired");
        assert!(slab.0.crash_dropped > 0, "crash window never fired");
    }
}

#[test]
fn slab_scheduler_recycles_event_slots() {
    // In steady state the arena must stop growing: distinct slots stay
    // bounded by the peak queue depth while pushes keep climbing.
    let (stats, sched) = {
        let n = 12;
        let actors: Vec<Chatter> = (0..n)
            .map(|_| Chatter { n, counter: 0, deliveries: Vec::new(), wakes: Vec::new() })
            .collect();
        let mut sim =
            Simulation::with_plan_scheduler(actors, 7, mixed_fault_plan(), SchedulerKind::Slab);
        sim.run_until(200.0);
        (sim.stats(), sim.sched_stats())
    };
    assert!(sched.pushes > 1_000);
    assert_eq!(
        sched.arena_slots, sched.peak_queue_len,
        "slots beyond the peak depth were allocated"
    );
    assert!(
        sched.arena_slots as u64 * 4 < sched.pushes,
        "arena ({} slots) grew with pushes ({}) instead of recycling",
        sched.arena_slots,
        sched.pushes
    );
    // Messages still in flight at the t_end cutoff are attempted but neither
    // delivered nor dropped; they sit in the queue alongside pending wakes.
    let in_flight = stats.sends_attempted - stats.deliveries - stats.sends_dropped;
    assert!(in_flight as usize <= sched.queue_len, "in-flight exceeds queued events");
}
