//! The virtual-time event loop.

use dpr_linalg::pool::{Pool, SharedSlice};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::faults::{BlockReason, FaultPlan};
use crate::sched::{EventQueue, SchedStats, SchedulerKind};

/// Simulation parameters (the legacy scalar fault model). Internally this
/// converts into a trivial [`FaultPlan`]; use [`Simulation::with_plan`]
/// for per-link loss, jitter, partitions, stragglers and crash windows.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Probability that a [`Ctx::send`] actually reaches its destination —
    /// the paper's `p` (1.0 = reliable network, 0.7 = the lossy setting of
    /// Figs 6–7).
    pub send_success_prob: f64,
    /// Network latency added to every successful send, in virtual time
    /// units. Small relative to think times, as in the paper's model where
    /// waiting dominates.
    pub latency: f64,
    /// Seed for all randomness (think times, drops). Same seed ⇒ identical
    /// run.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self { send_success_prob: 1.0, latency: 0.01, seed: 0 }
    }
}

/// Counters the engine maintains across a run. At quiescence,
/// `deliveries + sends_dropped == sends_attempted`; the `*_dropped`
/// sub-counters partition the deterministic share of `sends_dropped`
/// (the remainder was lost to the random loss roll).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to [`Ctx::send`].
    pub sends_attempted: u64,
    /// Messages that were dropped by failure injection.
    pub sends_dropped: u64,
    /// Of the dropped messages, how many were severed by an active
    /// network partition (no loss roll was consumed for these).
    pub partition_dropped: u64,
    /// Of the dropped messages, how many involved a crashed endpoint
    /// (no loss roll was consumed for these).
    pub crash_dropped: u64,
    /// Messages delivered to `on_message`.
    pub deliveries: u64,
    /// Wake events processed.
    pub wakes: u64,
}

/// A simulated process (page ranker). Actors only interact with the world
/// through the [`Ctx`] passed to their callbacks, which keeps them
/// deterministic and testable in isolation.
pub trait Actor {
    /// The message type exchanged between actors.
    type Msg;

    /// Called once at simulation start (schedule the first wake here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// The pure-compute slice of a wake. The engine calls this exactly
    /// once immediately before every [`Actor::on_wake`], on both the
    /// sequential and the batched path; the batched path may run the
    /// thinks of several same-window wakes concurrently and out of order.
    /// Implementations must therefore touch **only this actor's own
    /// state** — no context, no RNG, no sends — and leave everything
    /// order-sensitive to `on_wake`. Default: no-op (all work in
    /// `on_wake`, which forfeits engine parallelism but stays correct).
    fn think(&mut self, _now: f64) {}

    /// Called when a previously scheduled wake fires.
    fn on_wake(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: usize, msg: Self::Msg);
}

/// The actor-facing handle into the engine: clock, RNG, scheduling and
/// messaging.
pub struct Ctx<'a, M> {
    now: f64,
    me: usize,
    kernel: &'a mut Kernel<M>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// This actor's index.
    #[must_use]
    pub fn me(&self) -> usize {
        self.me
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.kernel.rng
    }

    /// The active fault plan (read-only; the plan is fixed for the run).
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.kernel.plan
    }

    /// Schedules `on_wake` for this actor after `delay` time units. If the
    /// fault plan marks this actor as a straggler, the delay stretches by
    /// its think factor.
    pub fn schedule_wake(&mut self, delay: f64) {
        assert!(delay >= 0.0 && delay.is_finite(), "invalid wake delay {delay}");
        let t = self.now + delay * self.kernel.plan.think_factor(self.me);
        self.kernel.push(t, EventKind::Wake { actor: self.me });
    }

    /// Sends `msg` to actor `dst`. Subject to fault injection: the message
    /// is dropped deterministically when a partition severs the link or an
    /// endpoint is crashed, and randomly with probability
    /// `1 − success_prob` otherwise (the paper's model of Y failing to
    /// reach another group). Returns whether the message survived.
    pub fn send(&mut self, dst: usize, msg: M) -> bool {
        self.kernel.transmit(self.now, self.me, dst, 0.0, false, msg)
    }

    /// Sends reliably regardless of loss, partitions and crashes
    /// (control-plane traffic that the paper does not subject to loss).
    /// Latency effects — straggler scaling and jitter — still apply.
    pub fn send_reliable(&mut self, dst: usize, msg: M) {
        self.kernel.transmit(self.now, self.me, dst, 0.0, true, msg);
    }

    /// Like [`Ctx::send`] but with `extra_delay` added on top of the base
    /// latency — used to model multi-hop journeys (e.g. a DHT lookup that
    /// takes `h` hops before the data message can leave). Still subject to
    /// fault injection. Returns whether the message survived.
    pub fn send_after(&mut self, dst: usize, extra_delay: f64, msg: M) -> bool {
        assert!(extra_delay >= 0.0 && extra_delay.is_finite());
        self.kernel.transmit(self.now, self.me, dst, extra_delay, false, msg)
    }
}

enum EventKind<M> {
    Wake { actor: usize },
    Message { src: usize, dst: usize, msg: M },
}

/// An event pulled out of the queue by batch extraction, waiting to commit
/// in canonical `(time, seq)` order.
enum HeldEvent<M> {
    Wake { t: f64, seq: u64, actor: usize },
    Msg { t: f64, seq: u64, src: usize, dst: usize, msg: M },
}

impl<M> HeldEvent<M> {
    fn key(&self) -> (f64, u64) {
        match self {
            HeldEvent::Wake { t, seq, .. } | HeldEvent::Msg { t, seq, .. } => (*t, *seq),
        }
    }
}

struct Kernel<M> {
    // Dequeue order is by (time, seq): earliest time first, FIFO
    // (sequence) among equal times — identical under either scheduler.
    queue: EventQueue<EventKind<M>>,
    rng: SmallRng,
    plan: FaultPlan,
    stats: SimStats,
    seq: u64,
}

impl<M> Kernel<M> {
    fn push(&mut self, time: f64, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    /// The single delivery path behind `send`/`send_reliable`/`send_after`.
    ///
    /// Fault ordering is part of the replay contract: deterministic blocks
    /// (partition, crash) are checked *before* the random loss roll and
    /// consume no RNG; the loss roll only fires when the effective success
    /// probability is below 1; jitter only draws when a distribution is
    /// configured. A trivial plan therefore consumes the RNG exactly as
    /// the pre-plan engine did.
    fn transmit(
        &mut self,
        now: f64,
        src: usize,
        dst: usize,
        extra_delay: f64,
        reliable: bool,
        msg: M,
    ) -> bool {
        self.stats.sends_attempted += 1;
        if !reliable {
            match self.plan.block_reason(src, dst, now) {
                Some(BlockReason::Partition) => {
                    self.stats.partition_dropped += 1;
                    self.stats.sends_dropped += 1;
                    return false;
                }
                Some(BlockReason::Crash) => {
                    self.stats.crash_dropped += 1;
                    self.stats.sends_dropped += 1;
                    return false;
                }
                None => {}
            }
            let p = self.plan.success_prob(src, dst);
            if p < 1.0 && !self.rng.gen_bool(p) {
                self.stats.sends_dropped += 1;
                return false;
            }
        }
        let jitter = self.plan.sample_jitter(&mut self.rng);
        let t = now + self.plan.latency_for(src) + jitter + extra_delay;
        self.push(t, EventKind::Message { src, dst, msg });
        true
    }
}

/// The simulation engine: a set of actors plus a virtual-time event queue.
pub struct Simulation<A: Actor> {
    actors: Vec<A>,
    kernel: Kernel<A::Msg>,
    now: f64,
    started: bool,
    /// Reusable batch buffer: `(time, seq, actor)` of the wakes pulled
    /// into the current lookahead window (no per-batch allocation).
    batch: Vec<(f64, u64, usize)>,
    /// Reusable membership mask over actor indices for batch extraction.
    in_batch: Vec<bool>,
    /// Reusable commit buffer: every event (wakes *and* deliveries) pulled
    /// from the queue head this window, in `(time, seq)` order.
    held: Vec<HeldEvent<A::Msg>>,
    /// `dirty[a]`: a held delivery targets actor `a`, so a later wake of
    /// `a` must not be pre-thought (its `think` would miss the delivery).
    dirty: Vec<bool>,
    batches: u64,
    max_batch: usize,
    singleton_batches: u64,
    held_deliveries: u64,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation over `actors` with the legacy scalar fault
    /// model (equivalent to `with_plan(actors, cfg.seed, cfg.into())`).
    #[must_use]
    pub fn new(actors: Vec<A>, cfg: SimConfig) -> Self {
        Self::with_plan(actors, cfg.seed, FaultPlan::from(cfg))
    }

    /// Creates a simulation over `actors` with a full [`FaultPlan`]. The
    /// same `(seed, plan)` pair replays bit-identically. Uses the default
    /// slab-backed scheduler; see [`Simulation::with_plan_scheduler`] to
    /// select the legacy heap.
    #[must_use]
    pub fn with_plan(actors: Vec<A>, seed: u64, plan: FaultPlan) -> Self {
        Self::with_plan_scheduler(actors, seed, plan, SchedulerKind::default())
    }

    /// [`Simulation::with_plan`] with an explicit event-scheduler choice.
    /// Both schedulers dequeue in the identical `(time, seq)` total order,
    /// so every run is bit-identical across them; the choice only affects
    /// wall-clock speed and allocation behavior (see [`crate::sched`]).
    #[must_use]
    pub fn with_plan_scheduler(
        actors: Vec<A>,
        seed: u64,
        plan: FaultPlan,
        scheduler: SchedulerKind,
    ) -> Self {
        Self {
            actors,
            kernel: Kernel {
                queue: EventQueue::new(scheduler),
                rng: SmallRng::seed_from_u64(seed),
                plan,
                stats: SimStats::default(),
                seq: 0,
            },
            now: 0.0,
            started: false,
            batch: Vec::new(),
            in_batch: Vec::new(),
            held: Vec::new(),
            dirty: Vec::new(),
            batches: 0,
            max_batch: 0,
            singleton_batches: 0,
            held_deliveries: 0,
        }
    }

    /// Adds an actor mid-run (a node joining the network). Its `on_start`
    /// fires immediately at the current virtual time when the simulation
    /// has already started, or at time 0 with everyone else otherwise.
    /// Returns the new actor's index.
    pub fn add_actor(&mut self, actor: A) -> usize {
        let idx = self.actors.len();
        self.actors.push(actor);
        if self.started {
            let mut ctx = Ctx { now: self.now, me: idx, kernel: &mut self.kernel };
            self.actors[idx].on_start(&mut ctx);
        }
        idx
    }

    /// The active fault plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.kernel.plan
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.kernel.stats
    }

    /// Scheduler allocation counters plus the engine's batch-extraction
    /// counters (arena recycling / parallelism observability; never part
    /// of the replay contract).
    #[must_use]
    pub fn sched_stats(&self) -> SchedStats {
        let mut stats = self.kernel.queue.stats();
        stats.batches = self.batches;
        stats.max_batch = self.max_batch;
        stats.singleton_batches = self.singleton_batches;
        stats.held_deliveries = self.held_deliveries;
        stats
    }

    /// Immutable view of the actors (for measurement between events).
    #[must_use]
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Mutable view of the actors.
    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Consumes the simulation and returns the actors (post-run state).
    #[must_use]
    pub fn into_actors(self) -> Vec<A> {
        self.actors
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let mut ctx = Ctx { now: self.now, me: i, kernel: &mut self.kernel };
            self.actors[i].on_start(&mut ctx);
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty
    /// (quiescence).
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some((time, kind)) = self.kernel.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        match kind {
            EventKind::Wake { actor } => {
                self.kernel.stats.wakes += 1;
                self.actors[actor].think(self.now);
                let mut ctx = Ctx { now: self.now, me: actor, kernel: &mut self.kernel };
                self.actors[actor].on_wake(&mut ctx);
            }
            EventKind::Message { src, dst, msg } => {
                self.kernel.stats.deliveries += 1;
                let mut ctx = Ctx { now: self.now, me: dst, kernel: &mut self.kernel };
                self.actors[dst].on_message(&mut ctx, src, msg);
            }
        }
        true
    }

    /// Runs until virtual time exceeds `t_end` or the queue drains. Events
    /// at exactly `t_end` are still processed.
    pub fn run_until(&mut self, t_end: f64) {
        self.start_if_needed();
        while let Some(time) = self.kernel.queue.peek_time() {
            if time > t_end {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t_end);
    }

    /// [`Simulation::run_until`] with a deterministic parallel think
    /// stage: the contiguous head of the event queue inside the safe
    /// lookahead window `[t0, t0 + plan.min_send_latency()]` — wakes *and*
    /// message deliveries — is extracted in one scan, the wakes'
    /// [`Actor::think`] slices run concurrently on `pool`, and every held
    /// event then commits in canonical `(time, seq)` order.
    ///
    /// Holding deliveries instead of stopping at them amortizes the
    /// lookahead scan across consecutive windows: a delivery sitting
    /// between two same-window wakes no longer ends the batch (it used to
    /// force a fresh window computation and a singleton batch for the
    /// trailing wake).
    ///
    /// Bit-identical to [`Simulation::run_until`] at any worker count:
    ///
    /// * A held delivery commits at its exact `(time, seq)` position, so
    ///   the sequential order of `on_wake`/`on_message` effects (sends,
    ///   RNG draws, counters, `seq` assignment) is unchanged.
    /// * A wake is only pre-thought when **no held delivery targets its
    ///   actor** (the `dirty` mask): extraction stops at a wake whose
    ///   actor has a pending held delivery, because that delivery commits
    ///   first sequentially and may alter the state `think` reads. Any
    ///   delivery *generated during commit* arrives at
    ///   `≥ t_commit + min_send_latency ≥` every held event's time, and at
    ///   equal time carries a larger `seq` (held events were queued
    ///   earlier), so it sorts after the whole batch.
    /// * `think` touches only the actor's own state and draws no RNG, so
    ///   running the batch's thinks early, concurrently, and in any order
    ///   is unobservable; every order-sensitive effect stays in the
    ///   commit phase.
    /// * A committed event may schedule a near-zero-delay self-wake that
    ///   lands *between* remaining held events; the commit loop replays
    ///   such interlopers inline at exactly their `(time, seq)` position.
    ///   An interloper is always a wake of an already-committed actor
    ///   (only `ctx.me` can self-schedule), never a pre-thought one.
    pub fn run_until_pooled(&mut self, t_end: f64, pool: &Pool)
    where
        A: Send,
    {
        self.start_if_needed();
        let d_min = self.kernel.plan.min_send_latency();
        while let Some((t0, _)) = self.kernel.queue.peek_key() {
            if t0 > t_end {
                break;
            }
            // Extraction: pull the contiguous queue head within the
            // window. Stop at a repeated wake, a wake whose actor has a
            // held delivery pending, or an out-of-window time.
            let window = (t0 + d_min).min(t_end);
            if self.in_batch.len() < self.actors.len() {
                self.in_batch.resize(self.actors.len(), false);
            }
            if self.dirty.len() < self.actors.len() {
                self.dirty.resize(self.actors.len(), false);
            }
            self.batch.clear();
            while let Some((t, seq, kind)) = self.kernel.queue.peek() {
                if t > window {
                    break;
                }
                match kind {
                    EventKind::Wake { actor } => {
                        let actor = *actor;
                        if self.in_batch[actor] || self.dirty[actor] {
                            break;
                        }
                        self.in_batch[actor] = true;
                        self.batch.push((t, seq, actor));
                        self.held.push(HeldEvent::Wake { t, seq, actor });
                        self.kernel.queue.pop();
                    }
                    EventKind::Message { .. } => {
                        let Some((_, EventKind::Message { src, dst, msg })) =
                            self.kernel.queue.pop()
                        else {
                            unreachable!("peeked event vanished");
                        };
                        self.dirty[dst] = true;
                        self.held.push(HeldEvent::Msg { t, seq, src, dst, msg });
                    }
                }
            }
            if !self.batch.is_empty() {
                self.batches += 1;
                self.max_batch = self.max_batch.max(self.batch.len());
            }
            if self.batch.len() == 1 {
                self.singleton_batches += 1;
                let (t, _seq, actor) = self.batch[0];
                self.actors[actor].think(t);
            } else if self.batch.len() > 1 {
                // Think phase: fan the batch out over the pool. Distinct
                // actor indices make the concurrent `&mut` carve-outs
                // disjoint.
                let batch = &self.batch;
                let shared = SharedSlice::new(&mut self.actors);
                pool.for_each_chunk(batch.len(), |i| {
                    let (t, _seq, actor) = batch[i];
                    // SAFETY: batch actors are pairwise distinct.
                    let a = &mut unsafe { shared.slice_mut(actor, 1) }[0];
                    a.think(t);
                });
            }
            // Commit phase: replay held events in (time, seq) order,
            // stepping any interloper event that sorts before the next
            // one at exactly the position the sequential engine would
            // give it.
            let mut held = std::mem::take(&mut self.held);
            for ev in held.drain(..) {
                let (t, seq) = ev.key();
                while let Some((ti, si)) = self.kernel.queue.peek_key() {
                    if ti.total_cmp(&t).then(si.cmp(&seq)).is_lt() {
                        self.step();
                    } else {
                        break;
                    }
                }
                debug_assert!(t >= self.now, "batch commit went back in time");
                self.now = t;
                match ev {
                    HeldEvent::Wake { actor, .. } => {
                        self.kernel.stats.wakes += 1;
                        let mut ctx = Ctx { now: t, me: actor, kernel: &mut self.kernel };
                        self.actors[actor].on_wake(&mut ctx);
                        self.in_batch[actor] = false;
                    }
                    HeldEvent::Msg { src, dst, msg, .. } => {
                        self.kernel.stats.deliveries += 1;
                        self.held_deliveries += 1;
                        let mut ctx = Ctx { now: t, me: dst, kernel: &mut self.kernel };
                        self.actors[dst].on_message(&mut ctx, src, msg);
                        self.dirty[dst] = false;
                    }
                }
            }
            self.held = held;
        }
        self.now = self.now.max(t_end);
    }

    /// Runs in slices of `sample_every` virtual-time units, calling
    /// `observe(time, &actors)` after each slice, until `t_end`. This is
    /// how the figure harnesses sample relative error / average rank over
    /// time.
    pub fn run_sampled(
        &mut self,
        t_end: f64,
        sample_every: f64,
        mut observe: impl FnMut(f64, &[A]),
    ) {
        assert!(sample_every > 0.0);
        let mut t = 0.0;
        while t < t_end {
            t = (t + sample_every).min(t_end);
            self.run_until(t);
            observe(t, &self.actors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Jitter;

    /// Ping-pong pair: actor 0 sends a counter to 1, which returns it
    /// incremented, for `limit` exchanges.
    struct Pinger {
        peer: usize,
        is_initiator: bool,
        limit: u64,
        seen: Vec<u64>,
    }

    impl Actor for Pinger {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.is_initiator {
                ctx.schedule_wake(0.0);
            }
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.send(self.peer, 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: usize, msg: u64) {
            self.seen.push(msg);
            if msg < self.limit {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn ping_pair(limit: u64) -> Vec<Pinger> {
        vec![
            Pinger { peer: 1, is_initiator: true, limit, seen: vec![] },
            Pinger { peer: 0, is_initiator: false, limit, seen: vec![] },
        ]
    }

    #[test]
    fn ping_pong_runs_to_quiescence() {
        let mut sim = Simulation::new(ping_pair(10), SimConfig::default());
        while sim.step() {}
        assert_eq!(sim.actors()[1].seen, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(sim.actors()[0].seen, vec![1, 3, 5, 7, 9]);
        assert_eq!(sim.stats().deliveries, 11);
        assert_eq!(sim.stats().sends_dropped, 0);
    }

    #[test]
    fn time_advances_with_latency() {
        let cfg = SimConfig { latency: 0.5, ..SimConfig::default() };
        let mut sim = Simulation::new(ping_pair(4), cfg);
        while sim.step() {}
        // 5 messages × 0.5 latency.
        assert!((sim.now() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn zero_success_probability_drops_everything() {
        let cfg = SimConfig { send_success_prob: 0.0, ..SimConfig::default() };
        let mut sim = Simulation::new(ping_pair(10), cfg);
        while sim.step() {}
        assert_eq!(sim.stats().deliveries, 0);
        assert_eq!(sim.stats().sends_dropped, 1);
        assert!(sim.actors()[1].seen.is_empty());
    }

    #[test]
    fn partial_loss_is_deterministic_per_seed() {
        let cfg = SimConfig { send_success_prob: 0.5, seed: 3, ..SimConfig::default() };
        let run = |cfg: SimConfig| {
            let mut sim = Simulation::new(ping_pair(50), cfg);
            while sim.step() {}
            (sim.stats(), sim.actors()[0].seen.clone())
        };
        let (stats, seen) = run(cfg);
        assert_eq!((stats, seen.clone()), run(cfg));
        // Some messages were dropped, some delivered, under p = 0.5.
        assert!(stats.sends_dropped > 0);
        assert!(stats.deliveries > 0);
    }

    #[test]
    fn send_reliable_ignores_failure_model() {
        struct Once {
            sent: bool,
            got: bool,
        }
        impl Actor for Once {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if !self.sent {
                    self.sent = true;
                    ctx.send_reliable(1, ());
                }
            }
            fn on_wake(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: usize, _msg: ()) {
                self.got = true;
            }
        }
        let cfg = SimConfig { send_success_prob: 0.0, ..SimConfig::default() };
        let mut sim = Simulation::new(
            vec![Once { sent: false, got: false }, Once { sent: true, got: false }],
            cfg,
        );
        while sim.step() {}
        assert!(sim.actors()[1].got);
    }

    #[test]
    fn send_after_adds_extra_delay() {
        struct Delayed {
            arrival: Option<f64>,
        }
        impl Actor for Delayed {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == 0 {
                    ctx.send_after(1, 2.5, ());
                }
            }
            fn on_wake(&mut self, _: &mut Ctx<'_, ()>) {}
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _: usize, _: ()) {
                self.arrival = Some(ctx.now());
            }
        }
        let cfg = SimConfig { latency: 0.5, ..SimConfig::default() };
        let mut sim =
            Simulation::new(vec![Delayed { arrival: None }, Delayed { arrival: None }], cfg);
        while sim.step() {}
        assert_eq!(sim.actors()[1].arrival, Some(3.0)); // 0.5 base + 2.5 extra
    }

    #[test]
    fn run_until_respects_bound() {
        let cfg = SimConfig { latency: 1.0, ..SimConfig::default() };
        let mut sim = Simulation::new(ping_pair(1000), cfg);
        sim.run_until(10.0);
        // 10 messages of latency 1.0 fit in [0, 10].
        assert_eq!(sim.stats().deliveries, 10);
    }

    #[test]
    fn run_sampled_observes_monotone_times() {
        let mut sim = Simulation::new(ping_pair(100), SimConfig::default());
        let mut times = vec![];
        sim.run_sampled(1.0, 0.25, |t, _| times.push(t));
        assert_eq!(times, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn equal_time_events_processed_fifo() {
        // With zero latency, messages land at identical times; the sequence
        // number must preserve send order.
        struct Burst {
            inbox: Vec<u64>,
        }
        impl Actor for Burst {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    for i in 0..10 {
                        ctx.send(1, i);
                    }
                }
            }
            fn on_wake(&mut self, _: &mut Ctx<'_, u64>) {}
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: usize, m: u64) {
                self.inbox.push(m);
            }
        }
        let cfg = SimConfig { latency: 0.0, ..SimConfig::default() };
        let mut sim = Simulation::new(vec![Burst { inbox: vec![] }, Burst { inbox: vec![] }], cfg);
        while sim.step() {}
        assert_eq!(sim.actors()[1].inbox, (0..10).collect::<Vec<_>>());
    }

    /// Actor that sends one message to its peer every 1.0 time units and
    /// records the arrival times of what it receives.
    struct Ticker {
        peer: usize,
        arrivals: Vec<f64>,
    }
    impl Actor for Ticker {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.schedule_wake(1.0);
        }
        fn on_wake(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.send(self.peer, ());
            ctx.schedule_wake(1.0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _: usize, _: ()) {
            self.arrivals.push(ctx.now());
        }
    }

    fn ticker_pair() -> Vec<Ticker> {
        vec![Ticker { peer: 1, arrivals: vec![] }, Ticker { peer: 0, arrivals: vec![] }]
    }

    #[test]
    fn partition_blocks_then_heals() {
        let plan = FaultPlan::new().with_latency(0.0).with_partition(2.5, 6.5, &[0]);
        let mut sim = Simulation::with_plan(ticker_pair(), 0, plan);
        sim.run_until(10.0);
        // Sends fire at t = 1..=10; those in [2.5, 6.5) are severed.
        let arrivals = &sim.actors()[1].arrivals;
        assert_eq!(arrivals, &[1.0, 2.0, 7.0, 8.0, 9.0, 10.0]);
        let stats = sim.stats();
        assert_eq!(stats.partition_dropped, 8); // t = 3..=6 from both sides
        assert_eq!(stats.sends_dropped, stats.partition_dropped);
        assert_eq!(stats.deliveries + stats.sends_dropped, stats.sends_attempted);
    }

    #[test]
    fn crash_window_drops_both_directions() {
        let plan = FaultPlan::new().with_latency(0.0).with_crash(1, 0.0, 5.5);
        let mut sim = Simulation::with_plan(ticker_pair(), 0, plan);
        sim.run_until(8.0);
        // Node 1 is down until 5.5: nothing to or from it gets through.
        assert_eq!(sim.actors()[1].arrivals, vec![6.0, 7.0, 8.0]);
        assert_eq!(sim.actors()[0].arrivals, vec![6.0, 7.0, 8.0]);
        assert_eq!(sim.stats().crash_dropped, 10);
    }

    #[test]
    fn straggler_think_factor_stretches_wakes() {
        let plan = FaultPlan::new().with_latency(0.0).with_straggler(0, 1.0, 2.0);
        let mut sim = Simulation::with_plan(ticker_pair(), 0, plan);
        sim.run_until(8.0);
        // Node 0 ticks every 2.0 instead of 1.0; node 1 is unaffected.
        assert_eq!(sim.actors()[1].arrivals, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(sim.actors()[0].arrivals.len(), 8);
    }

    #[test]
    fn per_link_loss_is_directional() {
        let plan = FaultPlan::new().with_latency(0.0).with_link_success(0, 1, 0.0);
        let mut sim = Simulation::with_plan(ticker_pair(), 0, plan);
        sim.run_until(5.0);
        assert!(sim.actors()[1].arrivals.is_empty());
        assert_eq!(sim.actors()[0].arrivals.len(), 5);
    }

    #[test]
    fn jitter_delays_arrivals_deterministically() {
        let plan = FaultPlan::new().with_latency(0.5).with_jitter(Jitter::Uniform { max: 0.25 });
        let run = || {
            let mut sim = Simulation::with_plan(ticker_pair(), 7, plan.clone());
            sim.run_until(5.0);
            sim.actors()[1].arrivals.clone()
        };
        let arrivals = run();
        assert_eq!(arrivals, run());
        for (i, t) in arrivals.iter().enumerate() {
            let base = (i + 1) as f64 + 0.5;
            assert!(*t >= base && *t < base + 0.25, "arrival {t} outside jitter window");
        }
    }

    #[test]
    fn add_actor_joins_mid_run() {
        let plan = FaultPlan::new().with_latency(0.0);
        let mut sim = Simulation::with_plan(ticker_pair(), 0, plan);
        sim.run_until(3.0);
        let idx = sim.add_actor(Ticker { peer: 0, arrivals: vec![] });
        assert_eq!(idx, 2);
        sim.run_until(6.0);
        // The joiner started its own clock at t = 3 and ticked at 4, 5, 6.
        assert_eq!(sim.actors()[0].arrivals.len(), 6 + 3);
    }

    #[test]
    fn pooled_run_is_bit_identical_with_interleaved_deliveries() {
        // Tickers exchange messages every tick, so deliveries land between
        // same-window wakes: the held-delivery path is exercised heavily.
        let plan = || FaultPlan::new().with_latency(0.25).with_default_success(0.9);
        let reference = {
            let mut sim = Simulation::with_plan(ticker_pair(), 5, plan());
            sim.run_until(50.0);
            (sim.stats(), sim.actors()[0].arrivals.clone(), sim.actors()[1].arrivals.clone())
        };
        for workers in [1, 2, 4] {
            let pool = Pool::with_workers(workers);
            let mut sim = Simulation::with_plan(ticker_pair(), 5, plan());
            sim.run_until_pooled(50.0, &pool);
            assert_eq!(reference.0, sim.stats(), "stats diverged at {workers} workers");
            assert_eq!(reference.1, sim.actors()[0].arrivals);
            assert_eq!(reference.2, sim.actors()[1].arrivals);
            let sched = sim.sched_stats();
            assert!(
                sched.held_deliveries > 0,
                "deliveries between wakes should ride inside batches"
            );
        }
    }

    #[test]
    fn dirty_actor_wake_is_not_pre_thought() {
        // Actor 1's `think` snapshots state that a same-window delivery
        // mutates. The delivery (t = 1.5) sorts before the wake (t = 1.6),
        // so `think` must observe it — the dirty mask forces the wake out
        // of the pre-think batch.
        struct Snap {
            inbox_sum: u64,
            thought: Vec<u64>,
        }
        impl Actor for Snap {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    ctx.schedule_wake(1.0);
                } else {
                    ctx.schedule_wake(1.6);
                }
            }
            fn think(&mut self, _now: f64) {
                self.thought.push(self.inbox_sum);
            }
            fn on_wake(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    ctx.send(1, 7);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: usize, msg: u64) {
                self.inbox_sum += msg;
            }
        }
        let actors =
            || vec![Snap { inbox_sum: 0, thought: vec![] }, Snap { inbox_sum: 0, thought: vec![] }];
        let plan = FaultPlan::new().with_latency(0.5);
        for workers in [1, 4] {
            let pool = Pool::with_workers(workers);
            let mut sim = Simulation::with_plan(actors(), 0, plan.clone());
            sim.run_until_pooled(3.0, &pool);
            assert_eq!(
                sim.actors()[1].thought,
                vec![7],
                "actor 1's think missed the earlier delivery at {workers} workers"
            );
        }
    }

    #[test]
    fn trivial_plan_is_bit_compatible_with_sim_config() {
        let cfg = SimConfig { send_success_prob: 0.5, latency: 0.3, seed: 3 };
        let via_cfg = {
            let mut sim = Simulation::new(ping_pair(50), cfg);
            while sim.step() {}
            (sim.stats(), sim.actors()[0].seen.clone(), sim.now())
        };
        let via_plan = {
            let plan = FaultPlan::new().with_latency(0.3).with_default_success(0.5);
            let mut sim = Simulation::with_plan(ping_pair(50), 3, plan);
            while sim.step() {}
            (sim.stats(), sim.actors()[0].seen.clone(), sim.now())
        };
        assert_eq!(via_cfg, via_plan);
    }
}
