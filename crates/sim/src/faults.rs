//! Composable, deterministic fault injection for the event loop.
//!
//! A [`FaultPlan`] describes *everything unreliable* about the simulated
//! network: i.i.d. message loss, per-link loss, latency jitter, timed
//! network partitions, straggler nodes and crash windows. The plan is pure
//! configuration — all randomness it needs is drawn from the engine's own
//! seeded RNG, so a `(seed, plan)` pair replays bit-identically.
//!
//! The legacy scalar pair [`SimConfig`](crate::SimConfig)
//! `{send_success_prob, latency}` converts into a trivial plan
//! (`FaultPlan::from(cfg)`) that consumes the RNG in exactly the same
//! pattern as the pre-plan engine did (a drop roll only when success
//! `< 1.0`, no jitter draws), so existing seeded runs reproduce their
//! historical trajectories.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::engine::SimConfig;

/// Latency jitter added to every send, sampled per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Jitter {
    /// No jitter; no RNG draw is consumed.
    None,
    /// Uniform in `[0, max)`.
    Uniform {
        /// Upper bound of the jitter interval.
        max: f64,
    },
    /// Exponential with the given mean (heavy-ish tail: occasional slow
    /// messages, the asynchronous regime studied by Kollias et al.).
    Exponential {
        /// Mean of the exponential delay.
        mean: f64,
    },
}

/// A timed network partition: during `[start, end)`, nodes inside
/// `side_a` cannot exchange messages with nodes outside it (in either
/// direction). After `end` the partition heals.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// Virtual time at which the partition starts.
    pub start: f64,
    /// Virtual time at which it heals.
    pub end: f64,
    /// Sorted members of one cell; everyone else forms the other cell.
    side_a: Vec<usize>,
}

impl PartitionWindow {
    fn severs(&self, from: usize, to: usize, now: f64) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        let a = self.side_a.binary_search(&from).is_ok();
        let b = self.side_a.binary_search(&to).is_ok();
        a != b
    }
}

/// A crash window: the node is down during `[start, end)` — every message
/// sent by it or addressed to it in that interval is dropped. Use
/// `end = f64::INFINITY` for a crash with no restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: usize,
    /// Crash time.
    pub start: f64,
    /// Restart time (exclusive).
    pub end: f64,
}

/// Multipliers slowing one node down without making it lossy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Multiplies the network latency of messages this node sends.
    pub latency_factor: f64,
    /// Multiplies every wake delay this node schedules (think time).
    pub think_factor: f64,
}

/// Why a send was dropped deterministically (no loss roll involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// An active [`PartitionWindow`] separates sender and receiver.
    Partition,
    /// Sender or receiver is inside a [`CrashWindow`].
    Crash,
}

/// The full fault model for a run. Compose with the `with_*` builders:
///
/// ```
/// use dpr_sim::faults::{FaultPlan, Jitter};
///
/// let plan = FaultPlan::new()
///     .with_default_success(0.7)                  // Figs 6–7's p = 0.7
///     .with_jitter(Jitter::Uniform { max: 0.05 })
///     .with_partition(50.0, 80.0, &[0, 1, 2])     // cells {0,1,2} vs rest
///     .with_straggler(4, 4.0, 3.0)                // node 4 runs slow
///     .with_crash(7, 120.0, 160.0);               // node 7 down, restarts
/// assert!(plan.success_prob(0, 5) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base network latency per send (the old `SimConfig::latency`).
    pub latency: f64,
    /// Success probability applied to every unreliable send (the old
    /// `send_success_prob`, the paper's `p`).
    pub default_success: f64,
    /// Latency jitter distribution.
    pub jitter: Jitter,
    /// Per-directed-link success probabilities; these *compose* with
    /// `default_success` multiplicatively (independent loss processes).
    link_success: BTreeMap<(usize, usize), f64>,
    /// Timed partitions.
    partitions: Vec<PartitionWindow>,
    /// Straggler nodes.
    stragglers: BTreeMap<usize, Straggler>,
    /// Crash windows.
    crashes: Vec<CrashWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// A perfect network: no loss, default latency, no jitter, no windows.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan {
            latency: SimConfig::default().latency,
            default_success: 1.0,
            jitter: Jitter::None,
            link_success: BTreeMap::new(),
            partitions: Vec::new(),
            stragglers: BTreeMap::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the base per-send latency.
    #[must_use]
    pub fn with_latency(mut self, latency: f64) -> Self {
        assert!(latency >= 0.0 && latency.is_finite(), "invalid latency {latency}");
        self.latency = latency;
        self
    }

    /// Sets the i.i.d. per-send success probability (the paper's `p`).
    #[must_use]
    pub fn with_default_success(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "success probability out of range: {p}");
        self.default_success = p;
        self
    }

    /// Sets the success probability of the directed link `from → to`;
    /// composes multiplicatively with the default success probability.
    #[must_use]
    pub fn with_link_success(mut self, from: usize, to: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "success probability out of range: {p}");
        self.link_success.insert((from, to), p);
        self
    }

    /// Sets the latency jitter distribution.
    #[must_use]
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        if let Jitter::Uniform { max } = jitter {
            assert!(max >= 0.0 && max.is_finite(), "invalid jitter bound {max}");
        }
        if let Jitter::Exponential { mean } = jitter {
            assert!(mean > 0.0 && mean.is_finite(), "invalid jitter mean {mean}");
        }
        self.jitter = jitter;
        self
    }

    /// Adds a partition window separating `side_a` from everyone else
    /// during `[start, end)`.
    #[must_use]
    pub fn with_partition(mut self, start: f64, end: f64, side_a: &[usize]) -> Self {
        assert!(start < end, "empty partition window [{start}, {end})");
        let mut side: Vec<usize> = side_a.to_vec();
        side.sort_unstable();
        side.dedup();
        self.partitions.push(PartitionWindow { start, end, side_a: side });
        self
    }

    /// Marks `node` as a straggler: its sends take `latency_factor ×` the
    /// base latency and its scheduled wakes stretch by `think_factor`.
    #[must_use]
    pub fn with_straggler(mut self, node: usize, latency_factor: f64, think_factor: f64) -> Self {
        assert!(latency_factor >= 1.0 && think_factor >= 1.0, "straggler factors must be ≥ 1");
        self.stragglers.insert(node, Straggler { latency_factor, think_factor });
        self
    }

    /// Adds a crash window for `node` during `[start, end)`; use
    /// `f64::INFINITY` as `end` for a permanent crash.
    #[must_use]
    pub fn with_crash(mut self, node: usize, start: f64, end: f64) -> Self {
        assert!(start < end, "empty crash window [{start}, {end})");
        self.crashes.push(CrashWindow { node, start, end });
        self
    }

    /// Adds a crash from which `node` never restarts — the fail-stop model
    /// the replication/takeover protocol is built against, as opposed to a
    /// [`Self::with_crash`] window a node recovers from with its state
    /// intact. Shorthand for `with_crash(node, start, f64::INFINITY)`.
    #[must_use]
    pub fn with_permanent_crash(self, node: usize, start: f64) -> Self {
        self.with_crash(node, start, f64::INFINITY)
    }

    /// Whether `node` is inside a crash window it never exits — i.e. a
    /// fail-stop failure rather than a crash/restart cycle. Recovery
    /// drivers use this to distinguish "wait for the restart" from "the
    /// state is gone, a replica must take over".
    #[must_use]
    pub fn is_permanently_crashed(&self, node: usize) -> bool {
        self.crashes.iter().any(|c| c.node == node && c.end == f64::INFINITY)
    }

    /// Effective success probability of a send `from → to` (loss processes
    /// compose multiplicatively).
    #[must_use]
    pub fn success_prob(&self, from: usize, to: usize) -> f64 {
        let link = self.link_success.get(&(from, to)).copied().unwrap_or(1.0);
        (self.default_success * link).clamp(0.0, 1.0)
    }

    /// Whether a send at time `now` is deterministically blocked, and why.
    /// Crash windows take precedence over partitions in the reported
    /// reason (a crashed node is down regardless of topology).
    #[must_use]
    pub fn block_reason(&self, from: usize, to: usize, now: f64) -> Option<BlockReason> {
        if self
            .crashes
            .iter()
            .any(|c| (c.node == from || c.node == to) && now >= c.start && now < c.end)
        {
            return Some(BlockReason::Crash);
        }
        if self.partitions.iter().any(|p| p.severs(from, to, now)) {
            return Some(BlockReason::Partition);
        }
        None
    }

    /// Whether `node` is inside a crash window at `now`.
    #[must_use]
    pub fn is_crashed(&self, node: usize, now: f64) -> bool {
        self.crashes.iter().any(|c| c.node == node && now >= c.start && now < c.end)
    }

    /// Network latency for a message sent by `from` (straggler-scaled).
    #[must_use]
    pub fn latency_for(&self, from: usize) -> f64 {
        self.latency * self.stragglers.get(&from).map_or(1.0, |s| s.latency_factor)
    }

    /// Lower bound on the delay of **any** message sent under this plan:
    /// straggler latency factors are ≥ 1, jitter samples are ≥ 0, and
    /// multi-hop extra delay is ≥ 0, so no send can arrive earlier than
    /// `now + min_send_latency()`. The batched engine uses this as its safe
    /// lookahead window: wakes within it cannot be affected by messages the
    /// batch itself generates.
    #[must_use]
    pub fn min_send_latency(&self) -> f64 {
        self.latency
    }

    /// Think-time multiplier for wakes scheduled by `node`.
    #[must_use]
    pub fn think_factor(&self, node: usize) -> f64 {
        self.stragglers.get(&node).map_or(1.0, |s| s.think_factor)
    }

    /// Samples the jitter term. Consumes an RNG draw **only** when a
    /// jitter distribution is configured, preserving bit-compatibility of
    /// trivial plans with the historical engine.
    pub fn sample_jitter(&self, rng: &mut SmallRng) -> f64 {
        match self.jitter {
            Jitter::None => 0.0,
            Jitter::Uniform { max } => rng.gen::<f64>() * max,
            Jitter::Exponential { mean } => {
                let u: f64 = rng.gen();
                -mean * (1.0 - u).ln()
            }
        }
    }

    /// Whether any loss, jitter, window or straggler is configured (used
    /// by callers that want a fast path for perfect networks).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.default_success >= 1.0
            && self.link_success.is_empty()
            && self.jitter == Jitter::None
            && self.partitions.is_empty()
            && self.stragglers.is_empty()
            && self.crashes.is_empty()
    }
}

impl From<SimConfig> for FaultPlan {
    fn from(cfg: SimConfig) -> Self {
        FaultPlan::new().with_latency(cfg.latency).with_default_success(cfg.send_success_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn trivial_plan_matches_sim_config() {
        let cfg = SimConfig { send_success_prob: 0.7, latency: 0.25, seed: 0 };
        let plan = FaultPlan::from(cfg);
        assert_eq!(plan.latency, 0.25);
        assert_eq!(plan.default_success, 0.7);
        assert!(!plan.is_trivial());
        assert!(FaultPlan::from(SimConfig::default()).is_trivial());
    }

    #[test]
    fn link_loss_composes_with_default() {
        let plan = FaultPlan::new().with_default_success(0.5).with_link_success(1, 2, 0.5);
        assert_eq!(plan.success_prob(1, 2), 0.25);
        assert_eq!(plan.success_prob(2, 1), 0.5);
        assert_eq!(plan.success_prob(0, 3), 0.5);
    }

    #[test]
    fn partition_severs_only_across_cells_during_window() {
        let plan = FaultPlan::new().with_partition(10.0, 20.0, &[0, 1]);
        // Across cells, inside the window: blocked both ways.
        assert_eq!(plan.block_reason(0, 2, 15.0), Some(BlockReason::Partition));
        assert_eq!(plan.block_reason(2, 1, 15.0), Some(BlockReason::Partition));
        // Within a cell: fine.
        assert_eq!(plan.block_reason(0, 1, 15.0), None);
        assert_eq!(plan.block_reason(2, 3, 15.0), None);
        // Outside the window: healed.
        assert_eq!(plan.block_reason(0, 2, 9.9), None);
        assert_eq!(plan.block_reason(0, 2, 20.0), None);
    }

    #[test]
    fn crash_window_blocks_both_directions_and_reports_crash() {
        let plan = FaultPlan::new().with_crash(3, 5.0, 10.0).with_partition(0.0, 100.0, &[3]);
        assert_eq!(plan.block_reason(3, 1, 7.0), Some(BlockReason::Crash));
        assert_eq!(plan.block_reason(1, 3, 7.0), Some(BlockReason::Crash));
        // After restart the partition (which also isolates 3) still bites.
        assert_eq!(plan.block_reason(1, 3, 50.0), Some(BlockReason::Partition));
        assert!(plan.is_crashed(3, 7.0));
        assert!(!plan.is_crashed(3, 10.0));
    }

    #[test]
    fn stragglers_scale_latency_and_think_time() {
        let plan = FaultPlan::new().with_latency(0.1).with_straggler(2, 4.0, 3.0);
        assert!((plan.latency_for(2) - 0.4).abs() < 1e-12);
        assert!((plan.latency_for(1) - 0.1).abs() < 1e-12);
        assert_eq!(plan.think_factor(2), 3.0);
        assert_eq!(plan.think_factor(1), 1.0);
    }

    #[test]
    fn jitter_none_consumes_no_rng() {
        let plan = FaultPlan::new();
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(plan.sample_jitter(&mut a), 0.0);
        // b untouched: both streams must stay aligned.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn jitter_draws_are_bounded_and_deterministic() {
        let plan = FaultPlan::new().with_jitter(Jitter::Uniform { max: 0.5 });
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let x = plan.sample_jitter(&mut a);
            assert!((0.0..0.5).contains(&x));
            assert_eq!(x, plan.sample_jitter(&mut b));
        }
        let exp = FaultPlan::new().with_jitter(Jitter::Exponential { mean: 0.2 });
        let mean: f64 = (0..5000).map(|_| exp.sample_jitter(&mut a)).sum::<f64>() / 5000.0;
        assert!((mean - 0.2).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn permanent_crash_never_restarts() {
        let plan = FaultPlan::new().with_permanent_crash(3, 50.0).with_crash(7, 50.0, 80.0);
        // Node 3 is fail-stop: down forever after 50.0.
        assert!(!plan.is_crashed(3, 49.9));
        assert!(plan.is_crashed(3, 50.0));
        assert!(plan.is_crashed(3, 1e12));
        assert!(plan.is_permanently_crashed(3));
        // Node 7 restarts at 80.0 and is not permanent.
        assert!(plan.is_crashed(7, 60.0));
        assert!(!plan.is_crashed(7, 80.0));
        assert!(!plan.is_permanently_crashed(7));
        assert!(!plan.is_permanently_crashed(0));
        // Both shapes block sends while down.
        assert_eq!(plan.block_reason(3, 0, 100.0), Some(BlockReason::Crash));
        assert_eq!(plan.block_reason(0, 7, 100.0), None);
    }
}
