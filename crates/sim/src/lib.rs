//! Deterministic discrete-event simulation of asynchronous page rankers.
//!
//! The paper's §5 setup: "To simulate the asynchronism of computation on
//! different nodes, each group u waits for Tw(u, m) time units before
//! starting a new loop step m ... Tw(u,m) follows exponential distribution
//! for a fixed u, and the mean waiting time of each page group are randomly
//! selected from [T1, T2] ... To simulate potential network failures, we
//! assume vector Y may fail to be sent to other groups with a probability
//! p."
//!
//! This crate supplies exactly that execution model, decoupled from the
//! ranking logic:
//!
//! * [`Simulation`] — a virtual-time event loop over a vector of [`Actor`]s
//!   (page rankers), with seeded, reproducible randomness;
//! * wake scheduling and message passing with configurable latency and a
//!   send-success probability (the paper calls the parameter `p`; all its
//!   figures converge fastest at `p = 1`, so `p` is the probability a send
//!   *succeeds* — see DESIGN.md);
//! * [`waits`] — the exponential think-time model;
//! * [`trace::TimeSeries`] — sampling support for the time-axis figures.

//!
//! # Example
//!
//! ```
//! use dpr_sim::{Actor, Ctx, SimConfig, Simulation};
//!
//! struct Echo { got: Option<u32> }
//! impl Actor for Echo {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == 0 { ctx.send(1, 99); }
//!     }
//!     fn on_wake(&mut self, _: &mut Ctx<'_, u32>) {}
//!     fn on_message(&mut self, _: &mut Ctx<'_, u32>, _from: usize, m: u32) {
//!         self.got = Some(m);
//!     }
//! }
//!
//! let mut sim = Simulation::new(
//!     vec![Echo { got: None }, Echo { got: None }],
//!     SimConfig::default(),
//! );
//! while sim.step() {}
//! assert_eq!(sim.actors()[1].got, Some(99));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod sched;
pub mod trace;
pub mod waits;

pub use engine::{Actor, Ctx, SimConfig, SimStats, Simulation};
pub use faults::{FaultPlan, Jitter};
pub use sched::{SchedStats, SchedulerKind};
pub use trace::TimeSeries;
