//! The event scheduler behind the virtual-time loop.
//!
//! Two interchangeable implementations of one priority queue keyed by
//! `(time, seq)`:
//!
//! * [`SlabScheduler`] (the default) — event payloads live in a reusable
//!   **arena** with free-list recycling, and a binary heap of small
//!   24-byte index entries decides the order. Steady-state operation
//!   performs **no per-event allocation**: a popped event returns its slot
//!   to the free list and the next push reuses it, and heap sift
//!   operations move only `(time, seq, slot)` triples instead of whole
//!   event payloads (which, for the network simulation, carry `Arc`s and
//!   enum variants an order of magnitude larger).
//! * the legacy `BinaryHeap<Reverse<Event>>` — kept selectable through
//!   [`SchedulerKind::BinaryHeap`] so golden tests and benchmarks can
//!   prove the slab path delivers the *exact* same event order and beats
//!   the heap on throughput.
//!
//! # Determinism
//!
//! Both schedulers dequeue strictly by `(time, seq)` where `seq` is the
//! global push counter maintained by the engine. Every event's key is
//! unique (`seq` never repeats), so the order is *total* — there are no
//! ties for a heap to break arbitrarily — and the two implementations are
//! observationally identical: same deliveries, same RNG consumption, same
//! `SimStats`, bit-identical actor state. `crates/sim/tests/`'s golden
//! test pins this equivalence under a mixed wake/send/fault workload.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which event-queue implementation the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Slab arena + index heap (no per-event allocation in steady state).
    #[default]
    Slab,
    /// The legacy `BinaryHeap` of whole events (baseline / golden-test
    /// reference).
    BinaryHeap,
}

/// Allocation/recycling counters of the active scheduler. For the slab
/// scheduler `arena_slots` is the high-water mark of *distinct* slots ever
/// allocated; in steady state it stays flat while `pushes` keeps growing —
/// the "no per-event allocation growth" property benchmarks assert. The
/// heap scheduler reports its equivalent capacity numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Total events ever pushed.
    pub pushes: u64,
    /// Distinct payload slots allocated over the run (slab: arena length;
    /// heap: peak queue length — every element is an inline payload).
    pub arena_slots: usize,
    /// Peak number of events simultaneously queued.
    pub peak_queue_len: usize,
    /// Events currently queued.
    pub queue_len: usize,
    /// Wake batches extracted by the batched engine (zero under the plain
    /// sequential `run_until`). Like the allocation counters these are
    /// observability, not part of the replay contract.
    pub batches: u64,
    /// Largest wake batch extracted.
    pub max_batch: usize,
    /// Batches that contained exactly one wake (no parallelism exposed).
    pub singleton_batches: u64,
    /// Message deliveries committed through a held batch instead of
    /// breaking extraction (the lookahead-amortization win: before held
    /// deliveries existed, every one of these ended a batch early).
    pub held_deliveries: u64,
}

/// Heap entry: the full ordering key plus the arena slot holding the
/// payload. Kept to three words so sift operations stay cheap and never
/// touch the payload arena.
#[derive(Clone, Copy)]
struct Entry {
    time: f64,
    seq: u64,
    slot: u32,
}

impl Entry {
    /// `(time, seq)` is unique per event, so this is a total order.
    #[inline]
    fn before(&self, other: &Entry) -> bool {
        match self.time.total_cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// Min-heap of [`Entry`] over a payload arena with free-list recycling.
pub struct SlabScheduler<T> {
    /// Payload arena. `None` slots are free (listed in `free`).
    arena: Vec<Option<T>>,
    /// Indices of free arena slots, reused LIFO.
    free: Vec<u32>,
    /// Implicit binary min-heap of `(time, seq, slot)`.
    heap: Vec<Entry>,
    pushes: u64,
    peak: usize,
}

impl<T> Default for SlabScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlabScheduler<T> {
    /// An empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self { arena: Vec::new(), free: Vec::new(), heap: Vec::new(), pushes: 0, peak: 0 }
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Queues `payload` under the key `(time, seq)`. Reuses a free arena
    /// slot when one exists; only grows the arena at the high-water mark.
    pub fn push(&mut self, time: f64, seq: u64, payload: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.arena[s as usize].is_none());
                self.arena[s as usize] = Some(payload);
                s
            }
            None => {
                let s = u32::try_from(self.arena.len()).expect("more than 2^32 queued events");
                self.arena.push(Some(payload));
                s
            }
        };
        self.heap.push(Entry { time, seq, slot });
        self.sift_up(self.heap.len() - 1);
        self.pushes += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    /// Earliest queued `(time, seq)`, if any.
    #[must_use]
    pub fn peek_key(&self) -> Option<(f64, u64)> {
        self.heap.first().map(|e| (e.time, e.seq))
    }

    /// Earliest queued event — key and a borrow of its payload — without
    /// dequeuing it. The batched engine uses this to decide whether the
    /// head is a wake it may pull into the current batch.
    #[must_use]
    pub fn peek(&self) -> Option<(f64, u64, &T)> {
        self.heap.first().map(|e| {
            let payload =
                self.arena[e.slot as usize].as_ref().expect("queued slot holds a payload");
            (e.time, e.seq, payload)
        })
    }

    /// Dequeues the earliest event, returning `(time, payload)` and
    /// recycling its arena slot.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let payload = self.arena[top.slot as usize].take().expect("queued slot holds a payload");
        self.free.push(top.slot);
        Some((top.time, payload))
    }

    /// Allocation counters (see [`SchedStats`]).
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            pushes: self.pushes,
            arena_slots: self.arena.len(),
            peak_queue_len: self.peak,
            queue_len: self.heap.len(),
            ..SchedStats::default()
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].before(&self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.heap[r].before(&self.heap[l]) { r } else { l };
            if self.heap[child].before(&self.heap[i]) {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

/// One event in the legacy heap (payload stored inline).
pub(crate) struct HeapEvent<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEvent<T> {}
impl<T> PartialOrd for HeapEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// The engine-facing queue: one of the two implementations, same contract.
pub(crate) enum EventQueue<T> {
    /// Arena-backed scheduler.
    Slab(SlabScheduler<T>),
    /// Legacy `BinaryHeap` of whole events.
    Heap { queue: BinaryHeap<Reverse<HeapEvent<T>>>, pushes: u64, peak: usize },
}

impl<T> EventQueue<T> {
    /// Creates the queue flavor selected by `kind`.
    #[must_use]
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Slab => EventQueue::Slab(SlabScheduler::new()),
            SchedulerKind::BinaryHeap => {
                EventQueue::Heap { queue: BinaryHeap::new(), pushes: 0, peak: 0 }
            }
        }
    }

    /// Queues `payload` under `(time, seq)`.
    pub fn push(&mut self, time: f64, seq: u64, payload: T) {
        match self {
            EventQueue::Slab(s) => s.push(time, seq, payload),
            EventQueue::Heap { queue, pushes, peak } => {
                queue.push(Reverse(HeapEvent { time, seq, payload }));
                *pushes += 1;
                *peak = (*peak).max(queue.len());
            }
        }
    }

    /// Earliest queued time, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        match self {
            EventQueue::Slab(s) => s.peek_key().map(|(t, _)| t),
            EventQueue::Heap { queue, .. } => queue.peek().map(|Reverse(e)| e.time),
        }
    }

    /// Earliest queued `(time, seq)`, if any.
    #[must_use]
    pub fn peek_key(&self) -> Option<(f64, u64)> {
        match self {
            EventQueue::Slab(s) => s.peek_key(),
            EventQueue::Heap { queue, .. } => queue.peek().map(|Reverse(e)| (e.time, e.seq)),
        }
    }

    /// Earliest queued event with a borrow of its payload, without
    /// dequeuing.
    #[must_use]
    pub fn peek(&self) -> Option<(f64, u64, &T)> {
        match self {
            EventQueue::Slab(s) => s.peek(),
            EventQueue::Heap { queue, .. } => {
                queue.peek().map(|Reverse(e)| (e.time, e.seq, &e.payload))
            }
        }
    }

    /// Dequeues the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        match self {
            EventQueue::Slab(s) => s.pop(),
            EventQueue::Heap { queue, .. } => queue.pop().map(|Reverse(e)| (e.time, e.payload)),
        }
    }

    /// Allocation counters of the active implementation.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        match self {
            EventQueue::Slab(s) => s.stats(),
            EventQueue::Heap { queue, pushes, peak } => SchedStats {
                pushes: *pushes,
                arena_slots: *peak,
                peak_queue_len: *peak,
                queue_len: queue.len(),
                ..SchedStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains `q` and returns the (time, payload) sequence.
    fn drain(q: &mut EventQueue<u32>) -> Vec<(f64, u32)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn both_schedulers_pop_in_identical_key_order() {
        // Adversarial key set: duplicate times (order decided by seq),
        // interleaved pushes and pops.
        let keys: Vec<(f64, u64)> =
            vec![(3.0, 0), (1.0, 1), (3.0, 2), (0.5, 3), (1.0, 4), (0.5, 5), (2.0, 6), (0.0, 7)];
        let mut slab = EventQueue::new(SchedulerKind::Slab);
        let mut heap = EventQueue::new(SchedulerKind::BinaryHeap);
        for (i, &(t, s)) in keys.iter().enumerate() {
            slab.push(t, s, i as u32);
            heap.push(t, s, i as u32);
        }
        let a = drain(&mut slab);
        let b = drain(&mut heap);
        assert_eq!(a, b);
        // And the order is (time, seq)-sorted.
        let mut sorted = keys.clone();
        sorted.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        let popped: Vec<(f64, u64)> = a.iter().map(|&(t, i)| (t, keys[i as usize].1)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn slab_recycles_slots_in_steady_state() {
        let mut s = SlabScheduler::new();
        let mut seq = 0u64;
        // Keep ≤ 4 events in flight across many push/pop cycles.
        for round in 0..1_000 {
            for _ in 0..4 {
                s.push(round as f64, seq, seq);
                seq += 1;
            }
            for _ in 0..4 {
                s.pop().unwrap();
            }
        }
        let st = s.stats();
        assert_eq!(st.pushes, 4_000);
        assert!(st.arena_slots <= 4, "arena grew ({}) despite recycling", st.arena_slots);
        assert_eq!(st.queue_len, 0);
        assert_eq!(st.peak_queue_len, 4);
    }

    #[test]
    fn slab_handles_interleaved_push_pop() {
        let mut s = SlabScheduler::new();
        s.push(5.0, 0, "a");
        s.push(1.0, 1, "b");
        assert_eq!(s.pop(), Some((1.0, "b")));
        s.push(3.0, 2, "c");
        s.push(0.5, 3, "d");
        assert_eq!(s.pop(), Some((0.5, "d")));
        assert_eq!(s.pop(), Some((3.0, "c")));
        assert_eq!(s.pop(), Some((5.0, "a")));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new(SchedulerKind::Slab);
        q.push(2.0, 0, 'x');
        q.push(1.0, 1, 'y');
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, 'y')));
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    fn nan_free_total_order_on_equal_times() {
        // seq breaks ties deterministically — FIFO among equal times.
        let mut s = SlabScheduler::new();
        for i in 0..10u64 {
            s.push(1.0, i, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
