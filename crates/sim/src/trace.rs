//! Time-series recording for the paper's time-axis figures (Figs 6–7).

/// An append-only series of `(time, value)` samples with monotonically
/// non-decreasing times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// If `time` precedes the last recorded time.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time series must be monotone: {time} < {last}");
        }
        self.points.push((time, value));
    }

    /// The raw samples.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Step-interpolated value at `time` (the most recent sample at or
    /// before `time`); `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, time: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(t, _)| t <= time);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Whether the value sequence is monotone non-decreasing up to `tol` —
    /// the Fig 7 / Theorem 4.1 property check.
    #[must_use]
    pub fn is_monotone_nondecreasing(&self, tol: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - tol)
    }

    /// First time the value drops to or below `threshold` (for
    /// convergence-time readouts on error curves); `None` if it never does.
    #[must_use]
    pub fn first_time_below(&self, threshold: f64) -> Option<f64> {
        self.points.iter().find(|&&(_, v)| v <= threshold).map(|&(t, _)| t)
    }

    /// First time strictly after `t0` the value drops to or below
    /// `threshold` — the recovery-time readout after a mid-run event (a
    /// node crash, a crawl delta): how long the error curve took to get
    /// back under tolerance once the event perturbed it. `None` if it
    /// never recovers within the series.
    #[must_use]
    pub fn first_time_below_after(&self, t0: f64, threshold: f64) -> Option<f64> {
        self.points.iter().find(|&&(t, v)| t > t0 && v <= threshold).map(|&(t, _)| t)
    }

    /// Resamples onto a uniform grid of `n` points over `[t0, t1]` using
    /// step interpolation — used to print fixed-width figure rows.
    #[must_use]
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && t1 > t0);
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, self.value_at(t).unwrap_or(f64::NAN))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new();
        s.push(0.0, 10.0);
        s.push(1.0, 5.0);
        s.push(2.0, 2.0);
        s.push(4.0, 1.0);
        s
    }

    #[test]
    fn push_and_inspect() {
        let s = sample_series();
        assert_eq!(s.len(), 4);
        assert_eq!(s.last_value(), Some(1.0));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_time_rejected() {
        let mut s = sample_series();
        s.push(3.0, 0.0);
    }

    #[test]
    fn step_interpolation() {
        let s = sample_series();
        assert_eq!(s.value_at(-0.5), None);
        assert_eq!(s.value_at(0.0), Some(10.0));
        assert_eq!(s.value_at(0.9), Some(10.0));
        assert_eq!(s.value_at(1.0), Some(5.0));
        assert_eq!(s.value_at(3.0), Some(2.0));
        assert_eq!(s.value_at(100.0), Some(1.0));
    }

    #[test]
    fn monotonicity_check() {
        let s = sample_series();
        assert!(!s.is_monotone_nondecreasing(0.0));
        let mut up = TimeSeries::new();
        up.push(0.0, 1.0);
        up.push(1.0, 1.0);
        up.push(2.0, 3.0);
        assert!(up.is_monotone_nondecreasing(0.0));
        // Tolerance absorbs float jitter.
        let mut jitter = TimeSeries::new();
        jitter.push(0.0, 1.0);
        jitter.push(1.0, 1.0 - 1e-13);
        assert!(jitter.is_monotone_nondecreasing(1e-12));
    }

    #[test]
    fn first_time_below() {
        let s = sample_series();
        assert_eq!(s.first_time_below(5.0), Some(1.0));
        assert_eq!(s.first_time_below(0.5), None);
    }

    #[test]
    fn first_time_below_after_skips_earlier_crossings() {
        // The curve dips below threshold early, spikes at t = 2, and
        // recovers at t = 4 — the post-event readout must ignore the
        // pre-event crossing.
        let s = sample_series();
        assert_eq!(s.first_time_below_after(1.0, 5.0), Some(2.0));
        assert_eq!(s.first_time_below_after(2.0, 1.5), Some(4.0));
        assert_eq!(s.first_time_below_after(4.0, 0.5), None);
        assert_eq!(s.first_time_below(5.0), Some(1.0), "unscoped readout unchanged");
    }

    #[test]
    fn resample_grid() {
        let s = sample_series();
        let grid = s.resample(0.0, 4.0, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (0.0, 10.0));
        assert_eq!(grid[4], (4.0, 1.0));
        assert_eq!(grid[2].1, 2.0); // t = 2.0
    }
}
