//! The paper's think-time model.
//!
//! Each page group `u` waits `Tw(u, m) ~ Exp(mean_u)` before loop step `m`,
//! where `mean_u` is drawn once per group, uniformly from `[T1, T2]`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};

/// Per-group think-time generator.
#[derive(Debug, Clone)]
pub struct WaitModel {
    /// Mean waiting time of each group (drawn from `[T1, T2]`).
    means: Vec<f64>,
}

impl WaitModel {
    /// Draws the per-group means for `k` groups uniformly from
    /// `[t1, t2]`, deterministically from `seed`.
    ///
    /// `t1 = t2` gives every group the same mean (the synchronous-ish
    /// setting of Fig 8, `T1 = T2 = 15`); `t1 = 0, t2 = 6` is the
    /// heterogeneous setting of Figs 6–7.
    ///
    /// # Panics
    /// If `t1 > t2`, either is negative, or `k == 0`.
    #[must_use]
    pub fn uniform_means(k: usize, t1: f64, t2: f64, seed: u64) -> Self {
        assert!(k > 0);
        assert!(t1 >= 0.0 && t2 >= t1, "invalid [T1, T2] = [{t1}, {t2}]");
        let mut rng = SmallRng::seed_from_u64(seed);
        let means = (0..k).map(|_| if t2 > t1 { rng.gen_range(t1..=t2) } else { t1 }).collect();
        Self { means }
    }

    /// The mean wait of group `u`.
    #[must_use]
    pub fn mean(&self, u: usize) -> f64 {
        self.means[u]
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Whether there are no groups (never true for a constructed model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }

    /// Samples `Tw(u, m)` — an exponential draw with group `u`'s mean. A
    /// zero mean yields zero wait (the degenerate `T1 = T2 = 0` corner).
    pub fn sample(&self, u: usize, rng: &mut SmallRng) -> f64 {
        let mean = self.means[u];
        if mean <= 0.0 {
            return 0.0;
        }
        Exp::new(1.0 / mean).expect("positive rate").sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_in_range() {
        let m = WaitModel::uniform_means(100, 2.0, 6.0, 1);
        assert_eq!(m.len(), 100);
        assert!((0..100).all(|u| (2.0..=6.0).contains(&m.mean(u))));
    }

    #[test]
    fn degenerate_interval() {
        let m = WaitModel::uniform_means(10, 15.0, 15.0, 1);
        assert!((0..10).all(|u| m.mean(u) == 15.0));
    }

    #[test]
    fn zero_mean_gives_zero_wait() {
        let m = WaitModel::uniform_means(1, 0.0, 0.0, 1);
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(m.sample(0, &mut rng), 0.0);
    }

    #[test]
    fn sample_mean_converges_to_group_mean() {
        let m = WaitModel::uniform_means(1, 5.0, 5.0, 1);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.sample(0, &mut rng)).sum();
        let avg = total / f64::from(n);
        assert!((avg - 5.0).abs() < 0.15, "empirical mean {avg}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WaitModel::uniform_means(50, 0.0, 6.0, 3);
        let b = WaitModel::uniform_means(50, 0.0, 6.0, 3);
        assert_eq!(a.means, b.means);
    }

    #[test]
    #[should_panic(expected = "invalid [T1, T2]")]
    fn inverted_interval_rejected() {
        let _ = WaitModel::uniform_means(3, 6.0, 2.0, 1);
    }
}
