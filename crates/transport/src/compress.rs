//! Batch compression — the paper's §4.5/§7 future-work item
//! ("Some techniques can be adopted to reduce convergence time, i.e.
//! compression"), implemented as an ablation.
//!
//! Three stacked ideas, each togglable:
//!
//! 1. **Id instead of URL** — within a batch both endpoints are known page
//!    ids; sending `u32` ids instead of ~40-byte URLs already shrinks a
//!    record from ~100 to 16 bytes (receivers share the crawl's id space).
//! 2. **Delta + varint** — sorting records by `(to_page, from_page)` makes
//!    id deltas tiny; LEB128 varints encode most deltas in 1 byte.
//! 3. **Score quantization + thresholding** — scores ship as `f32`, and
//!    records whose |score| falls below a threshold are dropped entirely
//!    (they cannot move the fixed point by more than the threshold — the
//!    Theorem 3.3 error bound absorbs the loss).

use bytes::{Buf, BufMut, BytesMut};

use crate::codec::RankUpdate;

/// Compression configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompressConfig {
    /// Drop records with `|score| < threshold` (0.0 keeps everything).
    pub threshold: f64,
}

impl Default for CompressConfig {
    fn default() -> Self {
        Self { threshold: 0.0 }
    }
}

/// Encodes a batch with delta + varint compression. Returns the encoded
/// bytes; records below the threshold are dropped (lossy by design —
/// callers choose a threshold below their solver tolerance).
#[must_use]
pub fn encode_batch(updates: &[RankUpdate], cfg: &CompressConfig) -> Vec<u8> {
    let mut kept: Vec<&RankUpdate> =
        updates.iter().filter(|u| u.score.abs() >= cfg.threshold).collect();
    kept.sort_unstable_by_key(|u| (u.to_page, u.from_page));

    let mut out = BytesMut::with_capacity(kept.len() * 8 + 8);
    put_varint(&mut out, kept.len() as u64);
    let mut prev_to = 0u32;
    let mut prev_from = 0u32;
    for u in kept {
        let dto = u64::from(u.to_page - prev_to);
        // When `to` advances, `from` restarts; delta within the same `to`.
        let dfrom = if dto == 0 {
            u64::from(u.from_page.wrapping_sub(prev_from))
        } else {
            u64::from(u.from_page)
        };
        put_varint(&mut out, dto);
        put_varint(&mut out, dfrom);
        out.put_f32(u.score as f32);
        prev_to = u.to_page;
        prev_from = u.from_page;
    }
    out.to_vec()
}

/// Decodes a batch produced by [`encode_batch`]. Returns `None` on corrupt
/// input. Scores come back as `f32`-rounded values; record order is the
/// canonical sorted order.
#[must_use]
pub fn decode_batch(mut buf: &[u8]) -> Option<Vec<RankUpdate>> {
    let count = get_varint(&mut buf)? as usize;
    let mut out = Vec::with_capacity(count);
    let mut prev_to = 0u32;
    let mut prev_from = 0u32;
    for _ in 0..count {
        let dto = u32::try_from(get_varint(&mut buf)?).ok()?;
        let dfrom = u32::try_from(get_varint(&mut buf)?).ok()?;
        if buf.remaining() < 4 {
            return None;
        }
        let score = f64::from(buf.get_f32());
        let to_page = prev_to.checked_add(dto)?;
        let from_page = if dto == 0 { prev_from.wrapping_add(dfrom) } else { dfrom };
        out.push(RankUpdate { from_page, to_page, score });
        prev_to = to_page;
        prev_from = from_page;
    }
    if buf.has_remaining() {
        return None; // trailing garbage
    }
    Some(out)
}

/// Size of the *uncompressed* URL-based wire form of the same batch, for
/// ratio reporting (uses the paper's 100-byte constant).
#[must_use]
pub fn baseline_size(updates: &[RankUpdate]) -> usize {
    updates.len() * 100
}

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch(n: u32) -> Vec<RankUpdate> {
        (0..n)
            .map(|i| RankUpdate {
                from_page: (i * 7) % 1000,
                to_page: (i * 3) % 500,
                score: f64::from(i) * 0.01 + 0.001,
            })
            .collect()
    }

    #[test]
    fn roundtrip_lossless_ids() {
        let batch = sample_batch(200);
        let enc = encode_batch(&batch, &CompressConfig::default());
        let dec = decode_batch(&enc).unwrap();
        assert_eq!(dec.len(), batch.len());
        // Canonical order: sorted by (to, from); compare as sets of id pairs.
        let mut want: Vec<(u32, u32)> = batch.iter().map(|u| (u.to_page, u.from_page)).collect();
        want.sort_unstable();
        let got: Vec<(u32, u32)> = dec.iter().map(|u| (u.to_page, u.from_page)).collect();
        assert_eq!(got, want);
        // Scores round-trip at f32 precision.
        for u in &dec {
            let orig = batch
                .iter()
                .find(|o| o.from_page == u.from_page && o.to_page == u.to_page)
                .unwrap();
            assert!((u.score - orig.score).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_batch() {
        let enc = encode_batch(&[], &CompressConfig::default());
        assert_eq!(decode_batch(&enc).unwrap(), vec![]);
    }

    #[test]
    fn threshold_drops_small_scores() {
        let batch = vec![
            RankUpdate { from_page: 1, to_page: 2, score: 0.5 },
            RankUpdate { from_page: 3, to_page: 4, score: 1e-9 },
        ];
        let enc = encode_batch(&batch, &CompressConfig { threshold: 1e-6 });
        let dec = decode_batch(&enc).unwrap();
        assert_eq!(dec.len(), 1);
        assert_eq!(dec[0].from_page, 1);
    }

    #[test]
    fn compression_ratio_exceeds_10x_vs_url_wire_form() {
        let batch = sample_batch(1000);
        let enc = encode_batch(&batch, &CompressConfig::default());
        let ratio = baseline_size(&batch) as f64 / enc.len() as f64;
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn corrupt_input_rejected() {
        let batch = sample_batch(50);
        let enc = encode_batch(&batch, &CompressConfig::default());
        assert!(decode_batch(&enc[..enc.len() - 1]).is_none());
        let mut extended = enc.clone();
        extended.push(0);
        assert!(decode_batch(&extended).is_none());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::from(u32::MAX), u64::MAX] {
            let mut b = BytesMut::new();
            put_varint(&mut b, v);
            let mut s: &[u8] = &b;
            assert_eq!(get_varint(&mut s), Some(v));
            assert!(s.is_empty());
        }
    }
}
