//! Wire encoding of rank-exchange records.
//!
//! The paper (§4.5, Eq 4.5) assumes `<url_from, url_to, score>` records of
//! ≈ 100 bytes (two ≈ 40-byte URLs \[16\] plus framing and the score). The
//! binary layout here is length-prefixed UTF-8 URLs plus an `f64` score;
//! [`MeasuredSizeModel`] measures real encoded sizes from a URL resolver,
//! while [`PaperSizeModel`] uses the paper's constants so analytic and
//! measured results can be compared on equal footing.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// §4.5's `l`: bytes per uncompressed `<url_from, url_to, score>` record
/// (two ≈ 40-byte URLs plus framing and the score).
pub const PAPER_RECORD_BYTES: usize = 100;

/// Bytes per DHT lookup message (request or response hop). The paper never
/// pins this; a node id + key + addressing info fits in ~50 bytes.
pub const PAPER_LOOKUP_BYTES: usize = 50;

/// Fixed per-message framing overhead (headers, destination key).
pub const PAPER_HEADER_BYTES: usize = 40;

/// Bytes per id-form record (`u32 from | u32 to | f64 score`): what a
/// record costs once both endpoints are known page ids instead of URLs —
/// the first compression idea in [`crate::compress`], which shrinks a
/// record from ~100 to 16 bytes.
pub const ID_RECORD_BYTES: usize = 16;

/// A single rank-transfer record: page `from_page` (in the sending group)
/// confers rank `score` on `to_page` (in the receiving group) through a
/// hyperlink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankUpdate {
    /// Global id of the linking page.
    pub from_page: u32,
    /// Global id of the linked-to page.
    pub to_page: u32,
    /// Rank amount transferred along this link this iteration.
    pub score: f64,
}

/// Appends one record to `buf` without allocating. Layout:
/// `u16 from_len | from_url | u16 to_len | to_url | f64 score`.
pub fn encode_update_into(buf: &mut BytesMut, u: &RankUpdate, from_url: &str, to_url: &str) {
    buf.put_u16(from_url.len() as u16);
    buf.put_slice(from_url.as_bytes());
    buf.put_u16(to_url.len() as u16);
    buf.put_slice(to_url.as_bytes());
    buf.put_f64(u.score);
}

/// Encodes one record with explicit URL strings into a fresh buffer. The
/// message hot path should prefer an [`UpdateEncoder`], which reuses one
/// scratch buffer across calls instead of allocating per record.
#[must_use]
pub fn encode_update(u: &RankUpdate, from_url: &str, to_url: &str) -> Bytes {
    let mut b = BytesMut::with_capacity(2 + from_url.len() + 2 + to_url.len() + 8);
    encode_update_into(&mut b, u, from_url, to_url);
    b.freeze()
}

/// Decodes one record from the front of `*buf`, advancing it past the
/// consumed bytes; `None` on truncated input.
fn decode_update_from(buf: &mut &[u8]) -> Option<(String, String, f64)> {
    if buf.remaining() < 2 {
        return None;
    }
    let fl = buf.get_u16() as usize;
    if buf.remaining() < fl {
        return None;
    }
    let from = String::from_utf8(buf[..fl].to_vec()).ok()?;
    buf.advance(fl);
    if buf.remaining() < 2 {
        return None;
    }
    let tl = buf.get_u16() as usize;
    if buf.remaining() < tl + 8 {
        return None;
    }
    let to = String::from_utf8(buf[..tl].to_vec()).ok()?;
    buf.advance(tl);
    let score = buf.get_f64();
    Some((from, to, score))
}

/// Decodes a record encoded by [`encode_update`]; returns the URLs and the
/// score, or `None` on truncated input.
#[must_use]
pub fn decode_update(mut buf: &[u8]) -> Option<(String, String, f64)> {
    decode_update_from(&mut buf)
}

/// Decodes a frame produced by [`UpdateEncoder::encode_batch`] — records
/// back to back, no count prefix — or `None` if any record is truncated.
#[must_use]
pub fn decode_batch(mut buf: &[u8]) -> Option<Vec<(String, String, f64)>> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_update_from(&mut buf)?);
    }
    Some(out)
}

/// Reusable encoder for the message hot path: one scratch buffer, cleared
/// and refilled per package, so steady-state encoding performs **zero**
/// allocations (the scratch grows to the largest package seen and stays
/// there). A coalesced package encodes as one frame of back-to-back
/// records — the wire format §4.5's `l·W` prices per update, sharing one
/// message header instead of paying it per record.
#[derive(Debug, Default)]
pub struct UpdateEncoder {
    scratch: BytesMut,
}

impl UpdateEncoder {
    /// A fresh encoder (scratch grows on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh encoder with pre-sized scratch.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { scratch: BytesMut::with_capacity(capacity) }
    }

    /// Encodes one record into the scratch buffer; the returned slice is
    /// valid until the next call.
    pub fn encode(&mut self, u: &RankUpdate, from_url: &str, to_url: &str) -> &[u8] {
        self.scratch.clear();
        encode_update_into(&mut self.scratch, u, from_url, to_url);
        &self.scratch
    }

    /// Encodes a whole package as one frame (records back to back); the
    /// returned slice is valid until the next call. Byte-identical to
    /// concatenating [`encode_update`] outputs, without their per-record
    /// allocations.
    pub fn encode_batch<S, T, I>(&mut self, updates: I) -> &[u8]
    where
        S: AsRef<str>,
        T: AsRef<str>,
        I: IntoIterator<Item = (RankUpdate, S, T)>,
    {
        self.scratch.clear();
        for (u, from, to) in updates {
            encode_update_into(&mut self.scratch, &u, from.as_ref(), to.as_ref());
        }
        &self.scratch
    }

    /// Copies the scratch's current frame out as an owned [`Bytes`] (the
    /// one place an allocation is unavoidable: handing the frame off).
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.scratch)
    }
}

/// Byte-size model for messages, so transmission simulations can run at
/// scale without materializing every URL string.
pub trait SizeModel {
    /// Encoded size of one rank-update record.
    fn update_size(&self, u: &RankUpdate) -> usize;
    /// Size of one DHT lookup message (request or response hop).
    fn lookup_size(&self) -> usize;
    /// Fixed per-message framing overhead (headers, destination key).
    fn header_size(&self) -> usize;
}

/// The paper's constants: 100-byte records (`l`), 50-byte lookups (`r` is
/// never pinned in the paper; a node id + key + addressing info fits in
/// ~50 bytes), 40-byte headers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperSizeModel;

impl SizeModel for PaperSizeModel {
    fn update_size(&self, _u: &RankUpdate) -> usize {
        PAPER_RECORD_BYTES
    }
    fn lookup_size(&self) -> usize {
        PAPER_LOOKUP_BYTES
    }
    fn header_size(&self) -> usize {
        PAPER_HEADER_BYTES
    }
}

/// Measures true encoded sizes through a URL resolver (`page id → URL`).
pub struct MeasuredSizeModel<F: Fn(u32) -> String> {
    resolver: F,
}

impl<F: Fn(u32) -> String> MeasuredSizeModel<F> {
    /// Wraps a URL resolver (typically `|p| graph.url_of(p)`).
    pub fn new(resolver: F) -> Self {
        Self { resolver }
    }
}

impl<F: Fn(u32) -> String> SizeModel for MeasuredSizeModel<F> {
    fn update_size(&self, u: &RankUpdate) -> usize {
        2 + (self.resolver)(u.from_page).len() + 2 + (self.resolver)(u.to_page).len() + 8
    }
    fn lookup_size(&self) -> usize {
        PAPER_LOOKUP_BYTES
    }
    fn header_size(&self) -> usize {
        PAPER_HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = RankUpdate { from_page: 1, to_page: 2, score: 0.375 };
        let enc = encode_update(&u, "http://a.edu/x.html", "http://b.edu/y.html");
        let (f, t, s) = decode_update(&enc).unwrap();
        assert_eq!(f, "http://a.edu/x.html");
        assert_eq!(t, "http://b.edu/y.html");
        assert_eq!(s, 0.375);
    }

    #[test]
    fn truncated_input_rejected() {
        let u = RankUpdate { from_page: 1, to_page: 2, score: 1.0 };
        let enc = encode_update(&u, "http://a.edu/", "http://b.edu/");
        for cut in [0, 1, 3, enc.len() - 1] {
            assert!(decode_update(&enc[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn batch_frame_matches_concatenated_records() {
        let updates = [
            (RankUpdate { from_page: 1, to_page: 2, score: 0.5 }, "http://a.edu/", "http://b.edu/"),
            (
                RankUpdate { from_page: 3, to_page: 4, score: 0.25 },
                "http://c.edu/",
                "http://d.edu/",
            ),
            (
                RankUpdate { from_page: 5, to_page: 6, score: 0.125 },
                "http://e.edu/",
                "http://f.edu/",
            ),
        ];
        let mut enc = UpdateEncoder::new();
        let frame = enc.encode_batch(updates.iter().map(|(u, f, t)| (*u, *f, *t))).to_vec();
        let mut reference = Vec::new();
        for (u, f, t) in &updates {
            reference.extend_from_slice(&encode_update(u, f, t));
        }
        assert_eq!(frame, reference, "batch frame must be byte-identical to concatenation");
        let decoded = decode_batch(&frame).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[1], ("http://c.edu/".to_string(), "http://d.edu/".to_string(), 0.25));
    }

    #[test]
    fn encoder_scratch_is_reusable() {
        let u = RankUpdate { from_page: 9, to_page: 10, score: 1.5 };
        let mut enc = UpdateEncoder::with_capacity(64);
        let first = enc.encode(&u, "http://a.edu/", "http://b.edu/").to_vec();
        // A second, larger encode then a repeat of the first: the scratch
        // must reset cleanly between calls.
        let _ = enc.encode_batch(vec![
            (u, "http://long-url.example.edu/path/x", "http://long-url.example.edu/path/y"),
            (u, "http://a.edu/", "http://b.edu/"),
        ]);
        let again = enc.encode(&u, "http://a.edu/", "http://b.edu/").to_vec();
        assert_eq!(first, again);
        assert_eq!(first, encode_update(&u, "http://a.edu/", "http://b.edu/").to_vec());
        assert_eq!(enc.to_bytes().to_vec(), again);
    }

    #[test]
    fn truncated_batch_rejected() {
        let u = RankUpdate { from_page: 1, to_page: 2, score: 1.0 };
        let mut enc = UpdateEncoder::new();
        let frame = enc.encode_batch(vec![(u, "http://a.edu/", "http://b.edu/"); 2]).to_vec();
        assert!(decode_batch(&frame[..frame.len() - 1]).is_none());
        assert_eq!(decode_batch(&[]).unwrap().len(), 0);
    }

    #[test]
    fn paper_model_constants() {
        let m = PaperSizeModel;
        let u = RankUpdate { from_page: 0, to_page: 0, score: 0.0 };
        assert_eq!(m.update_size(&u), PAPER_RECORD_BYTES);
        assert_eq!(m.lookup_size(), PAPER_LOOKUP_BYTES);
        assert_eq!(m.header_size(), PAPER_HEADER_BYTES);
        // The id-form record is exactly two u32 ids plus the f64 score.
        assert_eq!(ID_RECORD_BYTES, std::mem::size_of::<u32>() * 2 + std::mem::size_of::<f64>());
    }

    #[test]
    fn measured_model_near_paper_constant() {
        // With ≈40-byte URLs the record should land near 100 bytes.
        let m = MeasuredSizeModel::new(|p| format!("http://www.cs-0001.edu/people/page{p}.html"));
        let u = RankUpdate { from_page: 123, to_page: 456, score: 1.0 };
        let sz = m.update_size(&u);
        assert!((80..=120).contains(&sz), "measured record size {sz}");
        // And it must match the real encoding exactly.
        let enc = encode_update(
            &u,
            "http://www.cs-0001.edu/people/page123.html",
            "http://www.cs-0001.edu/people/page456.html",
        );
        assert_eq!(sz, enc.len());
    }
}
