//! Wire encoding of rank-exchange records.
//!
//! The paper (§4.5, Eq 4.5) assumes `<url_from, url_to, score>` records of
//! ≈ 100 bytes (two ≈ 40-byte URLs \[16\] plus framing and the score). The
//! binary layout here is length-prefixed UTF-8 URLs plus an `f64` score;
//! [`MeasuredSizeModel`] measures real encoded sizes from a URL resolver,
//! while [`PaperSizeModel`] uses the paper's constants so analytic and
//! measured results can be compared on equal footing.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A single rank-transfer record: page `from_page` (in the sending group)
/// confers rank `score` on `to_page` (in the receiving group) through a
/// hyperlink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankUpdate {
    /// Global id of the linking page.
    pub from_page: u32,
    /// Global id of the linked-to page.
    pub to_page: u32,
    /// Rank amount transferred along this link this iteration.
    pub score: f64,
}

/// Encodes one record with explicit URL strings. Layout:
/// `u16 from_len | from_url | u16 to_len | to_url | f64 score`.
#[must_use]
pub fn encode_update(u: &RankUpdate, from_url: &str, to_url: &str) -> Bytes {
    let mut b = BytesMut::with_capacity(2 + from_url.len() + 2 + to_url.len() + 8);
    b.put_u16(from_url.len() as u16);
    b.put_slice(from_url.as_bytes());
    b.put_u16(to_url.len() as u16);
    b.put_slice(to_url.as_bytes());
    b.put_f64(u.score);
    b.freeze()
}

/// Decodes a record encoded by [`encode_update`]; returns the URLs and the
/// score, or `None` on truncated input.
#[must_use]
pub fn decode_update(mut buf: &[u8]) -> Option<(String, String, f64)> {
    if buf.remaining() < 2 {
        return None;
    }
    let fl = buf.get_u16() as usize;
    if buf.remaining() < fl {
        return None;
    }
    let from = String::from_utf8(buf[..fl].to_vec()).ok()?;
    buf.advance(fl);
    if buf.remaining() < 2 {
        return None;
    }
    let tl = buf.get_u16() as usize;
    if buf.remaining() < tl + 8 {
        return None;
    }
    let to = String::from_utf8(buf[..tl].to_vec()).ok()?;
    buf.advance(tl);
    let score = buf.get_f64();
    Some((from, to, score))
}

/// Byte-size model for messages, so transmission simulations can run at
/// scale without materializing every URL string.
pub trait SizeModel {
    /// Encoded size of one rank-update record.
    fn update_size(&self, u: &RankUpdate) -> usize;
    /// Size of one DHT lookup message (request or response hop).
    fn lookup_size(&self) -> usize;
    /// Fixed per-message framing overhead (headers, destination key).
    fn header_size(&self) -> usize;
}

/// The paper's constants: 100-byte records (`l`), 50-byte lookups (`r` is
/// never pinned in the paper; a node id + key + addressing info fits in
/// ~50 bytes), 40-byte headers.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperSizeModel;

impl SizeModel for PaperSizeModel {
    fn update_size(&self, _u: &RankUpdate) -> usize {
        100
    }
    fn lookup_size(&self) -> usize {
        50
    }
    fn header_size(&self) -> usize {
        40
    }
}

/// Measures true encoded sizes through a URL resolver (`page id → URL`).
pub struct MeasuredSizeModel<F: Fn(u32) -> String> {
    resolver: F,
}

impl<F: Fn(u32) -> String> MeasuredSizeModel<F> {
    /// Wraps a URL resolver (typically `|p| graph.url_of(p)`).
    pub fn new(resolver: F) -> Self {
        Self { resolver }
    }
}

impl<F: Fn(u32) -> String> SizeModel for MeasuredSizeModel<F> {
    fn update_size(&self, u: &RankUpdate) -> usize {
        2 + (self.resolver)(u.from_page).len() + 2 + (self.resolver)(u.to_page).len() + 8
    }
    fn lookup_size(&self) -> usize {
        50
    }
    fn header_size(&self) -> usize {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = RankUpdate { from_page: 1, to_page: 2, score: 0.375 };
        let enc = encode_update(&u, "http://a.edu/x.html", "http://b.edu/y.html");
        let (f, t, s) = decode_update(&enc).unwrap();
        assert_eq!(f, "http://a.edu/x.html");
        assert_eq!(t, "http://b.edu/y.html");
        assert_eq!(s, 0.375);
    }

    #[test]
    fn truncated_input_rejected() {
        let u = RankUpdate { from_page: 1, to_page: 2, score: 1.0 };
        let enc = encode_update(&u, "http://a.edu/", "http://b.edu/");
        for cut in [0, 1, 3, enc.len() - 1] {
            assert!(decode_update(&enc[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn paper_model_constants() {
        let m = PaperSizeModel;
        let u = RankUpdate { from_page: 0, to_page: 0, score: 0.0 };
        assert_eq!(m.update_size(&u), 100);
        assert_eq!(m.lookup_size(), 50);
    }

    #[test]
    fn measured_model_near_paper_constant() {
        // With ≈40-byte URLs the record should land near 100 bytes.
        let m = MeasuredSizeModel::new(|p| format!("http://www.cs-0001.edu/people/page{p}.html"));
        let u = RankUpdate { from_page: 123, to_page: 456, score: 1.0 };
        let sz = m.update_size(&u);
        assert!((80..=120).contains(&sz), "measured record size {sz}");
        // And it must match the real encoding exactly.
        let enc = encode_update(
            &u,
            "http://www.cs-0001.edu/people/page123.html",
            "http://www.cs-0001.edu/people/page456.html",
        );
        assert_eq!(sz, enc.len());
    }
}
