//! Rank-exchange transport (§4.4 of the paper).
//!
//! Page rankers exchange `<url_from, url_to, score>` records — a page
//! `url_from` with rank `score` has an out-link to `url_to` in another
//! group. Two delivery schemes are modelled, with full message and byte
//! accounting so the scalability analysis of §4.4 can be *measured*:
//!
//! * **Direct transmission** ([`direct`]) — the sender first resolves the
//!   destination's address with a DHT lookup (`h` routing hops), then sends
//!   one point-to-point message. Per iteration this costs
//!   `S_dt = (h+1)·N²` messages and `D_dt = l·W + h·r·N²` bytes.
//! * **Indirect transmission** ([`indirect`]) — the paper's contribution:
//!   updates are packed into per-neighbor packages and *routed along the
//!   overlay paths*, each intermediate node unpacking, recombining by
//!   destination and repacking. Messages flow only between overlay
//!   neighbors: `S_it = g·N` messages, `D_it = h·l·W` bytes.
//!
//! [`codec`] provides the wire encoding (records measured with real URL
//! strings average ≈ 100 bytes, the paper's constant), and [`compress`]
//! implements the paper's future-work idea: delta + varint compression of
//! sorted update batches with optional thresholding.

//!
//! # Example
//!
//! ```
//! use dpr_overlay::{id::key_from_u64, PastryNetwork};
//! use dpr_transport::codec::PaperSizeModel;
//! use dpr_transport::{direct, indirect, Batch, Outgoing, RankUpdate};
//!
//! let net = PastryNetwork::with_nodes(50, 1);
//! // Every node sends one rank update to every group: the §4.4 worst case.
//! let traffic: Vec<Outgoing> = (0..50)
//!     .map(|s| Outgoing {
//!         sender: s,
//!         batches: (0..50u64)
//!             .map(|g| Batch {
//!                 dest_key: key_from_u64(g),
//!                 updates: vec![RankUpdate { from_page: s as u32, to_page: g as u32, score: 0.1 }],
//!             })
//!             .collect(),
//!     })
//!     .collect();
//! let d = direct::simulate(&net, &traffic, &PaperSizeModel);
//! let i = indirect::simulate(&net, &traffic, &PaperSizeModel).stats;
//! assert_eq!(d.delivered_updates, i.delivered_updates);
//! assert!(i.messages < d.messages); // O(gN) beats O((h+1)N²)
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod compress;
pub mod direct;
pub mod indirect;
pub mod snapshot;
pub mod stats;

pub use codec::{MeasuredSizeModel, PaperSizeModel, RankUpdate, SizeModel};
pub use stats::{analytic, TransmissionStats};

use dpr_overlay::NodeIndex;

/// A batch of rank updates a node wants delivered to the page ranker
/// responsible for `dest_key`.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// DHT key of the destination page group.
    pub dest_key: u128,
    /// The rank-transfer records.
    pub updates: Vec<RankUpdate>,
}

/// One sender's outgoing traffic for an exchange round.
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing {
    /// Overlay node performing the send.
    pub sender: NodeIndex,
    /// Batches by destination group.
    pub batches: Vec<Batch>,
}
