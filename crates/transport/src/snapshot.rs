//! Wire encoding of group-state checkpoints (the replication protocol).
//!
//! A crash-survivable run periodically ships each group's dynamic solver
//! state — the local rank vector `r`, the afferent contributions `X` is
//! rebuilt from, and the iteration epoch — to the group's overlay replicas
//! (`Overlay::replicas`). Only *dynamic* state travels: the group's pages
//! and link structure are deterministic functions of the graph and the
//! partition, so any node can rebuild a [`GroupContext`] locally and a
//! snapshot stays compact.
//!
//! [`encode_snapshot_into`] / [`decode_snapshot`] define the binary frame
//! (all integers little-endian via [`bytes`]' big-endian-free `put_*_le`):
//!
//! ```text
//! u32 group | u64 epoch | u32 n_r | f64 × n_r
//!           | u32 n_src | { u32 src | u32 n | (u32 idx, f64 score) × n } × n_src
//! ```
//!
//! Scores are carried as raw `f64` bits, so a decoded snapshot restores the
//! *exact* rank fixed point the owner held — the warm-takeover contract.
//! For simulation pricing, [`paper_snapshot_bytes`] charges a snapshot like
//! §4.5 charges rank updates: one record per carried entry (`r` entries
//! plus afferent entries) at the update size, plus one message header per
//! frame — so checkpoints compete for uplink bandwidth on the same terms
//! as the Y-exchange traffic they ride alongside.
//!
//! [`GroupContext`]: ../../dpr_core/group/struct.GroupContext.html

use bytes::{Buf, BufMut, BytesMut};

/// The dynamic state of one hosted group, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFrame {
    /// Id of the checkpointed group.
    pub group: u32,
    /// The owner's outer-iteration count when the snapshot was taken.
    pub epoch: u64,
    /// The group's local rank vector `r` (exact bits).
    pub r: Vec<f64>,
    /// Per-source afferent contributions, ascending source order: what the
    /// owner's `AfferentState::snapshot_received` produced.
    pub afferent: Vec<(u32, Vec<(u32, f64)>)>,
}

impl SnapshotFrame {
    /// Number of scored entries the frame carries (`r` plus afferent) —
    /// the record count [`paper_snapshot_bytes`] prices.
    #[must_use]
    pub fn n_entries(&self) -> u64 {
        self.r.len() as u64 + self.afferent.iter().map(|(_, v)| v.len() as u64).sum::<u64>()
    }
}

/// Appends one snapshot frame to `buf` without allocating.
pub fn encode_snapshot_into(buf: &mut BytesMut, s: &SnapshotFrame) {
    buf.put_u32(s.group);
    buf.put_u64(s.epoch);
    buf.put_u32(s.r.len() as u32);
    for &v in &s.r {
        buf.put_f64(v);
    }
    buf.put_u32(s.afferent.len() as u32);
    for (src, entries) in &s.afferent {
        buf.put_u32(*src);
        buf.put_u32(entries.len() as u32);
        for &(idx, score) in entries {
            buf.put_u32(idx);
            buf.put_f64(score);
        }
    }
}

/// Decodes one frame from the front of `*buf`, advancing past the consumed
/// bytes; `None` on truncated input.
fn decode_snapshot_from(buf: &mut &[u8]) -> Option<SnapshotFrame> {
    if buf.remaining() < 4 + 8 + 4 {
        return None;
    }
    let group = buf.get_u32();
    let epoch = buf.get_u64();
    let n_r = buf.get_u32() as usize;
    if buf.remaining() < n_r * 8 + 4 {
        return None;
    }
    let r: Vec<f64> = (0..n_r).map(|_| buf.get_f64()).collect();
    let n_src = buf.get_u32() as usize;
    let mut afferent = Vec::with_capacity(n_src);
    for _ in 0..n_src {
        if buf.remaining() < 8 {
            return None;
        }
        let src = buf.get_u32();
        let n = buf.get_u32() as usize;
        if buf.remaining() < n * 12 {
            return None;
        }
        let entries: Vec<(u32, f64)> = (0..n).map(|_| (buf.get_u32(), buf.get_f64())).collect();
        afferent.push((src, entries));
    }
    Some(afferent).map(|afferent| SnapshotFrame { group, epoch, r, afferent })
}

/// Decodes a frame produced by [`encode_snapshot_into`]; `None` on
/// truncated input.
#[must_use]
pub fn decode_snapshot(mut buf: &[u8]) -> Option<SnapshotFrame> {
    decode_snapshot_from(&mut buf)
}

/// Decodes a batch of back-to-back frames (one checkpoint message to one
/// replica carries every group the owner hosts); `None` if any frame is
/// truncated.
#[must_use]
pub fn decode_snapshot_batch(mut buf: &[u8]) -> Option<Vec<SnapshotFrame>> {
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_snapshot_from(&mut buf)?);
    }
    Some(out)
}

/// §4.5-style price of a snapshot carrying `n_entries` scored records
/// (header charged separately, once per message): checkpoints pay the same
/// per-record constant as rank updates so replication overhead is
/// comparable against the Y-exchange traffic in the same byte counters.
#[must_use]
pub fn paper_snapshot_bytes(n_entries: u64, update_bytes: u64) -> u64 {
    n_entries * update_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> SnapshotFrame {
        SnapshotFrame {
            group: 7,
            epoch: 42,
            r: vec![0.125, 1.0 / 3.0, f64::MIN_POSITIVE],
            afferent: vec![(2, vec![(0, 0.5), (2, 1e-12)]), (9, vec![(1, -0.0)])],
        }
    }

    #[test]
    fn roundtrip_preserves_exact_bits() {
        let f = frame();
        let mut buf = BytesMut::new();
        encode_snapshot_into(&mut buf, &f);
        let back = decode_snapshot(&buf).unwrap();
        assert_eq!(back.group, f.group);
        assert_eq!(back.epoch, f.epoch);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.r), bits(&f.r));
        assert_eq!(back.afferent.len(), 2);
        assert_eq!(back.afferent[1].1[0].1.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back, f);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buf = BytesMut::new();
        encode_snapshot_into(&mut buf, &frame());
        for cut in [0, 3, 11, 15, 16, buf.len() - 1] {
            assert!(decode_snapshot(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn batch_decodes_back_to_back_frames() {
        let a = frame();
        let b = SnapshotFrame { group: 8, epoch: 1, r: vec![0.25], afferent: Vec::new() };
        let mut buf = BytesMut::new();
        encode_snapshot_into(&mut buf, &a);
        encode_snapshot_into(&mut buf, &b);
        let batch = decode_snapshot_batch(&buf).unwrap();
        assert_eq!(batch, vec![a, b]);
        assert!(decode_snapshot_batch(&buf[..buf.len() - 1]).is_none());
        assert_eq!(decode_snapshot_batch(&[]).unwrap().len(), 0);
    }

    #[test]
    fn paper_pricing_counts_every_carried_entry() {
        let f = frame();
        assert_eq!(f.n_entries(), 3 + 3);
        assert_eq!(paper_snapshot_bytes(f.n_entries(), 100), 600);
    }
}
