//! Direct transmission (§4.4, Fig 3).
//!
//! For every destination group, the sender first resolves the responsible
//! node's transport address with a DHT lookup — `h` routed messages of `r`
//! bytes each — and then ships the whole batch in a single point-to-point
//! message. Nearly one-to-one communication: with `N` rankers each holding
//! links into almost every other group, an iteration costs `O((h+1)·N²)`
//! messages.

use dpr_overlay::Overlay;

use crate::codec::SizeModel;
use crate::stats::TransmissionStats;
use crate::Outgoing;

/// Simulates one exchange round with direct transmission, returning the
/// aggregate cost. Lookup results are *not* cached across batches — the
/// paper's model charges a lookup per destination per iteration, because in
/// a churning P2P network cached addresses go stale between iterations.
#[must_use]
pub fn simulate<O: Overlay + ?Sized, S: SizeModel>(
    net: &O,
    traffic: &[Outgoing],
    sizes: &S,
) -> TransmissionStats {
    let mut st = TransmissionStats { rounds: 1, ..TransmissionStats::default() };
    for out in traffic {
        for batch in &out.batches {
            let dest = net.responsible(batch.dest_key);
            if dest == out.sender {
                // Local delivery: no network involvement.
                st.delivered_updates += batch.updates.len() as u64;
                continue;
            }
            // Lookup: one message per routing hop.
            let hops = net.route(out.sender, batch.dest_key).len() as u64;
            st.messages += hops;
            st.bytes += hops * sizes.lookup_size() as u64;
            // Data: one point-to-point message carrying the batch.
            st.messages += 1;
            let payload: usize = batch.updates.iter().map(|u| sizes.update_size(u)).sum::<usize>()
                + sizes.header_size();
            st.bytes += payload as u64;
            st.delivered_updates += batch.updates.len() as u64;
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{PaperSizeModel, RankUpdate};
    use crate::Batch;
    use dpr_overlay::id::key_from_u64;
    use dpr_overlay::PastryNetwork;

    fn one_update() -> Vec<RankUpdate> {
        vec![RankUpdate { from_page: 1, to_page: 2, score: 0.5 }]
    }

    #[test]
    fn local_delivery_is_free() {
        let net = PastryNetwork::with_nodes(10, 1);
        let key = key_from_u64(42);
        let home = net.responsible(key);
        let traffic = vec![Outgoing {
            sender: home,
            batches: vec![Batch { dest_key: key, updates: one_update() }],
        }];
        let st = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(st.messages, 0);
        assert_eq!(st.bytes, 0);
        assert_eq!(st.delivered_updates, 1);
    }

    #[test]
    fn remote_delivery_charges_lookup_plus_data() {
        let net = PastryNetwork::with_nodes(50, 2);
        let key = key_from_u64(7);
        let dest = net.responsible(key);
        let sender = (0..50).find(|&s| s != dest).unwrap();
        let hops = net.route(sender, key).len() as u64;
        assert!(hops >= 1);
        let traffic = vec![Outgoing {
            sender,
            batches: vec![Batch { dest_key: key, updates: one_update() }],
        }];
        let st = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(st.messages, hops + 1);
        assert_eq!(st.bytes, hops * 50 + 100 + 40);
        assert_eq!(st.delivered_updates, 1);
    }

    #[test]
    fn all_to_all_scales_quadratically() {
        let net = PastryNetwork::with_nodes(20, 3);
        let n = net.n_nodes();
        // Every node sends one batch to every group key 0..n.
        let traffic: Vec<Outgoing> = (0..n)
            .map(|s| Outgoing {
                sender: s,
                batches: (0..n as u64)
                    .map(|g| Batch { dest_key: key_from_u64(g), updates: one_update() })
                    .collect(),
            })
            .collect();
        let st = simulate(&net, &traffic, &PaperSizeModel);
        // ≥ one data message per remote (sender, dest) pair.
        assert!(st.messages as usize >= n * (n - 2), "messages {}", st.messages);
        assert_eq!(st.delivered_updates, (n * n) as u64);
    }
}
