//! Message and byte accounting, plus the closed-form cost model of §4.4.

/// Accumulated cost of an exchange round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransmissionStats {
    /// Point-to-point messages sent (every lookup hop and every data
    /// package counts as one message).
    pub messages: u64,
    /// Total bytes crossing links (a byte forwarded over `h` hops counts
    /// `h` times — that is what consumes network capacity).
    pub bytes: u64,
    /// Rank updates that reached their destination group.
    pub delivered_updates: u64,
    /// Forwarding rounds until all traffic drained (indirect transmission
    /// only; 1 for direct).
    pub rounds: u32,
}

impl TransmissionStats {
    /// Merges another round's cost into this one.
    pub fn merge(&mut self, other: &TransmissionStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.delivered_updates += other.delivered_updates;
        self.rounds = self.rounds.max(other.rounds);
    }
}

impl std::fmt::Display for TransmissionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} msgs, {} bytes, {} updates delivered in {} rounds",
            self.messages, self.bytes, self.delivered_updates, self.rounds
        )
    }
}

/// The paper's closed-form estimates (formulas 4.1–4.4). All take the same
/// symbols the paper uses: `w` pages total, `n` page rankers, `h` average
/// lookup hops, `l` bytes per link record, `r` bytes per lookup message,
/// `g` average neighbors per node.
pub mod analytic {
    /// Formula 4.1 — bytes moved per iteration with indirect transmission:
    /// `D_it = h·l·W` (every one of the ~W inter-group link records is
    /// forwarded over `h` hops on average).
    #[must_use]
    pub fn d_indirect(h: f64, l: f64, w: f64) -> f64 {
        h * l * w
    }

    /// Formula 4.2 — bytes with direct transmission:
    /// `D_dt = l·W + h·r·N²` (records travel one logical hop, but every
    /// pair of rankers first pays an `h`-hop lookup of `r` bytes).
    #[must_use]
    pub fn d_direct(h: f64, l: f64, w: f64, r: f64, n: f64) -> f64 {
        l * w + h * r * n * n
    }

    /// Formula 4.3 — messages per iteration with indirect transmission:
    /// `S_it = g·N` (each node sends one package per neighbor).
    #[must_use]
    pub fn s_indirect(g: f64, n: f64) -> f64 {
        g * n
    }

    /// Formula 4.4 — messages with direct transmission:
    /// `S_dt = (h+1)·N²` (an `h`-message lookup plus one data message for
    /// every ordered pair of rankers).
    #[must_use]
    pub fn s_direct(h: f64, n: f64) -> f64 {
        (h + 1.0) * n * n
    }

    /// The N beyond which indirect transmission sends fewer messages than
    /// direct: smallest `n` with `g·n < (h+1)·n²`, i.e. `n > g/(h+1)`.
    /// "Direct transmission seems better only for small N."
    #[must_use]
    pub fn message_crossover_n(g: f64, h: f64) -> f64 {
        g / (h + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = TransmissionStats { messages: 1, bytes: 10, delivered_updates: 2, rounds: 3 };
        let b = TransmissionStats { messages: 4, bytes: 40, delivered_updates: 8, rounds: 2 };
        a.merge(&b);
        assert_eq!(
            a,
            TransmissionStats { messages: 5, bytes: 50, delivered_updates: 10, rounds: 3 }
        );
    }

    #[test]
    fn paper_example_formula_4_6() {
        // §4.5 example: W = 3G pages, l = 100 B, h = 2.5 ⇒ D_it = 750 GB;
        // at 100 MB/s that is T > 7500 s.
        let d = analytic::d_indirect(2.5, 100.0, 3.0e9);
        let t = d / 100.0e6;
        assert!((t - 7500.0).abs() < 1.0, "T = {t}");
    }

    #[test]
    fn indirect_beats_direct_for_large_n() {
        let (h, g) = (2.5, 40.0);
        let n = 1000.0;
        assert!(analytic::s_indirect(g, n) < analytic::s_direct(h, n));
        assert!(
            analytic::d_indirect(h, 100.0, 3.0e9)
                < analytic::d_direct(h, 100.0, 3.0e9, 50.0, 100_000.0)
        );
    }

    #[test]
    fn direct_beats_indirect_for_tiny_n() {
        let (h, g) = (2.5, 40.0);
        let n = 3.0; // below the crossover g/(h+1) ≈ 11.4
        assert!(analytic::s_direct(h, n) < analytic::s_indirect(g, n));
        assert!(analytic::message_crossover_n(g, h) > n);
    }

    #[test]
    fn display_renders() {
        let s = TransmissionStats::default();
        assert!(s.to_string().contains("msgs"));
    }
}
