//! Indirect transmission (§4.4, Figs 4–5) — the paper's scalable scheme.
//!
//! Instead of looking up each destination's address, a node packs all its
//! pending updates by *next overlay hop* and hands one package to each
//! neighbor. Every intermediate node unpacks arriving packages, recombines
//! the contained batches by destination, and repacks per next hop —
//! "something opposite to the spirit of P2P": data rides the DHT routing
//! paths themselves. The win: messages flow only between neighbors, so an
//! iteration needs `O(g·N)` messages instead of `O((h+1)·N²)`; the price:
//! every byte is forwarded `h` times, `D_it = h·l·W`.

use std::collections::BTreeMap;

use dpr_overlay::{NodeIndex, Overlay};

use crate::codec::SizeModel;
use crate::stats::TransmissionStats;
use crate::{Batch, Outgoing};

/// The result of draining one exchange round through the overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectOutcome {
    /// Aggregate network cost.
    pub stats: TransmissionStats,
    /// Batches delivered at each node, recombined by destination key
    /// (`delivered[node]` = everything that node is responsible for).
    pub delivered: Vec<Vec<Batch>>,
}

/// Simulates one full exchange round of indirect transmission: all senders'
/// traffic is injected simultaneously, then forwarding proceeds in
/// synchronous waves until every batch reaches the node responsible for its
/// destination key. One message is counted per (node, neighbor) pair per
/// wave that actually carries data — the per-neighbor package of Fig 4.
#[must_use]
pub fn simulate<O: Overlay + ?Sized, S: SizeModel>(
    net: &O,
    traffic: &[Outgoing],
    sizes: &S,
) -> IndirectOutcome {
    let n = net.n_nodes();
    let mut stats = TransmissionStats::default();
    let mut delivered: Vec<Vec<Batch>> = vec![Vec::new(); n];

    // pending[node] = batches currently held by `node` awaiting forwarding.
    let mut pending: Vec<Vec<Batch>> = vec![Vec::new(); n];
    for out in traffic {
        assert!(out.sender < n, "sender out of range");
        pending[out.sender].extend(out.batches.iter().cloned());
    }

    loop {
        let mut moved = false;
        // Next wave's pending queues.
        let mut next: Vec<Vec<Batch>> = vec![Vec::new(); n];
        for (node, batches) in pending.iter_mut().enumerate() {
            if batches.is_empty() {
                continue;
            }
            // Recombine by destination, then group by next hop: one package
            // (= one message) per neighbor that has any traffic.
            // BTreeMap keeps forwarding order deterministic across runs.
            let mut by_hop: BTreeMap<NodeIndex, Vec<Batch>> = BTreeMap::new();
            for batch in batches.drain(..) {
                match net.next_hop(node, batch.dest_key) {
                    None => {
                        stats.delivered_updates += batch.updates.len() as u64;
                        merge_into(&mut delivered[node], batch);
                    }
                    Some(hop) => {
                        merge_into(by_hop.entry(hop).or_default(), batch);
                    }
                }
            }
            for (hop, package) in by_hop {
                moved = true;
                stats.messages += 1;
                let payload: usize = package
                    .iter()
                    .flat_map(|b| b.updates.iter())
                    .map(|u| sizes.update_size(u))
                    .sum::<usize>()
                    + sizes.header_size();
                stats.bytes += payload as u64;
                next[hop].extend(package);
            }
        }
        if !moved {
            break;
        }
        stats.rounds += 1;
        pending = next;
    }
    IndirectOutcome { stats, delivered }
}

/// Appends `batch` to `list`, merging with an existing batch for the same
/// destination key (the "recombines the data in them according to their
/// destinations" step of Fig 4).
fn merge_into(list: &mut Vec<Batch>, batch: Batch) {
    if let Some(existing) = list.iter_mut().find(|b| b.dest_key == batch.dest_key) {
        existing.updates.extend(batch.updates);
    } else {
        list.push(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{PaperSizeModel, RankUpdate};
    use dpr_overlay::id::key_from_u64;
    use dpr_overlay::PastryNetwork;

    fn upd(score: f64) -> RankUpdate {
        RankUpdate { from_page: 0, to_page: 1, score }
    }

    #[test]
    fn delivers_to_responsible_node() {
        let net = PastryNetwork::with_nodes(60, 4);
        let key = key_from_u64(99);
        let dest = net.responsible(key);
        let sender = (0..60).find(|&s| s != dest).unwrap();
        let traffic = vec![Outgoing {
            sender,
            batches: vec![Batch { dest_key: key, updates: vec![upd(0.25)] }],
        }];
        let out = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(out.stats.delivered_updates, 1);
        assert_eq!(out.delivered[dest].len(), 1);
        assert_eq!(out.delivered[dest][0].updates[0].score, 0.25);
        // Messages = hop count of the route (one package per hop).
        assert_eq!(out.stats.messages as usize, net.route(sender, key).len());
    }

    #[test]
    fn local_batch_needs_no_messages() {
        let net = PastryNetwork::with_nodes(10, 5);
        let key = key_from_u64(1);
        let home = net.responsible(key);
        let traffic = vec![Outgoing {
            sender: home,
            batches: vec![Batch { dest_key: key, updates: vec![upd(1.0)] }],
        }];
        let out = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(out.stats.messages, 0);
        assert_eq!(out.stats.delivered_updates, 1);
    }

    #[test]
    fn packages_aggregate_batches_sharing_next_hop() {
        // All nodes send to every group: per wave each node emits at most
        // one message per neighbor, so total messages must be far below the
        // direct-transmission bound even though the same traffic flows.
        let net = PastryNetwork::with_nodes(40, 6);
        let n = net.n_nodes();
        let traffic: Vec<Outgoing> = (0..n)
            .map(|s| Outgoing {
                sender: s,
                batches: (0..n as u64)
                    .map(|g| Batch { dest_key: key_from_u64(g), updates: vec![upd(0.1)] })
                    .collect(),
            })
            .collect();
        let indirect = simulate(&net, &traffic, &PaperSizeModel).stats;
        let direct = crate::direct::simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(indirect.delivered_updates, (n * n) as u64);
        assert_eq!(indirect.delivered_updates, direct.delivered_updates);
        assert!(
            indirect.messages < direct.messages / 2,
            "indirect {} vs direct {}",
            indirect.messages,
            direct.messages
        );
        // But indirect pays forwarding bytes (h× the payload).
        assert!(indirect.bytes > 0);
    }

    #[test]
    fn all_updates_conserved() {
        let net = PastryNetwork::with_nodes(25, 7);
        let traffic: Vec<Outgoing> = (0..25)
            .map(|s| Outgoing {
                sender: s,
                batches: (0..5u64)
                    .map(|g| Batch {
                        dest_key: key_from_u64(g),
                        updates: vec![upd(s as f64), upd(s as f64 + 0.5)],
                    })
                    .collect(),
            })
            .collect();
        let out = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(out.stats.delivered_updates, 25 * 5 * 2);
        let total: usize =
            out.delivered.iter().flat_map(|v| v.iter()).map(|b| b.updates.len()).sum();
        assert_eq!(total, 25 * 5 * 2);
        // Every delivered batch must sit at its responsible node.
        for (node, batches) in out.delivered.iter().enumerate() {
            for b in batches {
                assert_eq!(net.responsible(b.dest_key), node);
            }
        }
    }

    #[test]
    fn rounds_bounded_by_route_length() {
        let net = PastryNetwork::with_nodes(200, 8);
        let key = key_from_u64(3);
        let dest = net.responsible(key);
        let sender = (0..200).find(|&s| s != dest).unwrap();
        let traffic = vec![Outgoing {
            sender,
            batches: vec![Batch { dest_key: key, updates: vec![upd(1.0)] }],
        }];
        let out = simulate(&net, &traffic, &PaperSizeModel);
        assert_eq!(out.stats.rounds as usize, net.route(sender, key).len());
    }
}
