//! # dpr — Distributed Page Ranking in Structured P2P Networks
//!
//! A from-scratch Rust reproduction of Shi, Yu, Yang & Wang,
//! *"Distributed Page Ranking in Structured P2P Networks"* (ICPP 2003):
//! Open System PageRank, the asynchronous distributed algorithms DPR1/DPR2,
//! the Pastry/Chord overlay substrate, direct vs. indirect rank
//! transmission, and the §4.5 capacity model — plus the full experiment
//! harness regenerating every figure and table of the paper's evaluation.
//!
//! This crate is a façade: it re-exports the workspace crates under one
//! namespace so applications depend on a single crate.
//!
//! ## Quickstart
//!
//! ```
//! use dpr::core::{run_distributed, DistributedRunConfig};
//! use dpr::graph::generators::toy;
//!
//! // Two web sites, densely linked internally, one bridge each way.
//! let graph = toy::two_cliques(5);
//! let result = run_distributed(
//!     &graph,
//!     DistributedRunConfig { k: 2, t_end: 120.0, ..DistributedRunConfig::default() },
//! );
//! // The distributed ranks converge to the centralized fixed point.
//! assert!(result.final_rel_err < 1e-4);
//! ```

#![warn(missing_docs)]

/// Sparse linear algebra: CSR matrices, fixed-point solver, convergence
/// theory (Theorems 3.1–3.3, appendix lemmas).
pub use dpr_linalg as linalg;

/// Web link graphs: builders, generators (incl. the edu-domain dataset
/// synthesizer), URL model, I/O, crawl refresh.
pub use dpr_graph as graph;

/// Page partitioning strategies and quality metrics (§4.1).
pub use dpr_partition as partition;

/// Structured P2P overlays: Pastry and Chord with hop-counted routing.
pub use dpr_overlay as overlay;

/// Rank-exchange transport: wire codec, direct/indirect transmission,
/// compression (§4.4, §4.5 future work).
pub use dpr_transport as transport;

/// Discrete-event simulation: actors, think times, failure injection,
/// time-series traces (§5 experiment setup).
pub use dpr_sim as sim;

/// The core algorithms: Open System PageRank, GroupPageRank, DPR1/DPR2,
/// CPR, HITS, personalized ranking, experiment orchestration (§2–§4).
pub use dpr_core as core;

/// The §4.5 analytic capacity model and Table 1.
pub use dpr_model as model;

/// Crawling substrate: hidden web (Fig 1's `W`), single + parallel
/// crawlers (Cho & Garcia-Molina's firewall/cross-over/exchange modes),
/// crawl-to-dataset conversion.
pub use dpr_crawl as crawl;
